//! The lock-free metrics registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones over plain atomics; recording into one is a single relaxed
//! RMW with no lock anywhere on the path. The [`MetricsRegistry`] map
//! is only locked to resolve a *name* to a handle (registration /
//! snapshot), so hot paths resolve once and keep the handle.
//!
//! Registries are **instance-scoped**, not process-global: every
//! component creates its own by default, and a deployment threads one
//! shared registry through broker, engine, stores and frontends so
//! `deployment.metrics()` is a single coherent snapshot. Tests that
//! build two apps therefore never see each other's counts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use safeweb_json::Value;

/// A monotonically increasing counter.
///
/// Increments are `Relaxed` (the count is monotonic, ordering between
/// two increments is irrelevant); reads are `Acquire` so a snapshot
/// taken after an observed effect (a response on a channel, a joined
/// thread) includes that effect's increments. This is the ordering fix
/// the old ad-hoc stats structs (all-`Relaxed`, including loads) were
/// missing.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a detached counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

/// A gauge: a value that goes up and down (queue depths, caps).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a detached gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Release);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Acquire)
    }
}

/// A fixed-bucket histogram: `bounds.len() + 1` atomic buckets, where
/// bucket `i` counts observations `v <= bounds[i]` not already counted
/// by a lower bucket, and the last bucket is the `+inf` overflow.
///
/// Quantile queries return the **upper bound** of the bucket containing
/// the requested rank (saturating at the last finite bound for
/// overflow), so the reported p99 is a guaranteed upper estimate at
/// bucket resolution. `observe` is two relaxed RMWs plus a bucket
/// search over a small sorted slice — no locks, no allocation.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

#[derive(Debug)]
struct HistInner {
    bounds: Box<[u64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the default latency layout
    /// ([`Histogram::latency_bounds`]).
    pub fn new() -> Histogram {
        Histogram::with_bounds(Self::latency_bounds())
    }

    /// Creates a histogram over explicit bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistInner {
                bounds: bounds.into(),
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// The default latency layout: powers of two from 1 µs to ~8.4 s
    /// (24 finite buckets + overflow), in nanoseconds.
    pub fn latency_bounds() -> &'static [u64] {
        const BOUNDS: [u64; 24] = {
            let mut b = [0u64; 24];
            let mut i = 0;
            while i < 24 {
                b[i] = 1000u64 << i;
                i += 1;
            }
            b
        };
        &BOUNDS
    }

    /// A size layout: powers of two from 1 to 1024 (for batch sizes).
    pub fn size_bounds() -> &'static [u64] {
        const BOUNDS: [u64; 11] = {
            let mut b = [0u64; 11];
            let mut i = 0;
            while i < 11 {
                b[i] = 1u64 << i;
                i += 1;
            }
            b
        };
        &BOUNDS
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.inner.bounds.partition_point(|b| v > *b);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn observe_ns(&self, dur: std::time::Duration) {
        self.observe(dur.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Acquire)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Acquire)
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) at bucket resolution; see the
    /// type docs for the upper-bound convention. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Median upper estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile upper estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile upper estimate.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// A point-in-time copy of the buckets (for merging and queries).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.to_vec(),
            counts: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Acquire))
                .collect(),
            sum: self.sum(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A point-in-time copy of one histogram's buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds (strictly increasing).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (overflow last).
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Quantile with the same convention as [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested order statistic, 1-based: ceil(q * n).
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Overflow bucket saturates to the last finite bound.
                return self.bounds.get(i).copied().unwrap_or_else(|| {
                    *self
                        .bounds
                        .last()
                        .expect("histogram has at least one bound")
                });
            }
        }
        *self
            .bounds
            .last()
            .expect("histogram has at least one bound")
    }

    /// Merges another snapshot (e.g. of a per-shard histogram) into this
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "merging unequal bucket layouts");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }
}

/// One registered metric.
#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    /// A derived gauge: computed at snapshot time from other metrics
    /// (hit rates, lag). Never on a record path.
    Derived(Arc<dyn Fn() -> f64 + Send + Sync>),
}

/// A named registry of metrics; cheap to clone and share.
///
/// `counter`/`gauge`/`histogram` are get-or-register: the first call
/// for a name creates the metric, later calls return a handle to the
/// same underlying atomics (and panic if the name is already registered
/// as a different kind — a programming error, not an operational one).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<RwLock<BTreeMap<String, Metric>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let metrics = self.metrics.read().expect("metrics registry poisoned");
        f.debug_struct("MetricsRegistry")
            .field("len", &metrics.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        kind: &'static str,
        extract: impl Fn(&Metric) -> Option<T>,
        make: impl FnOnce() -> (T, Metric),
    ) -> T {
        if let Some(existing) = self
            .metrics
            .read()
            .expect("metrics registry poisoned")
            .get(name)
        {
            return extract(existing)
                .unwrap_or_else(|| panic!("metric {name:?} already registered as a non-{kind}"));
        }
        let mut metrics = self.metrics.write().expect("metrics registry poisoned");
        if let Some(existing) = metrics.get(name) {
            return extract(existing)
                .unwrap_or_else(|| panic!("metric {name:?} already registered as a non-{kind}"));
        }
        let (handle, metric) = make();
        metrics.insert(name.to_string(), metric);
        handle
    }

    /// Gets or registers a counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            "counter",
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::new();
                (c.clone(), Metric::Counter(c))
            },
        )
    }

    /// Gets or registers a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            "gauge",
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::new();
                (g.clone(), Metric::Gauge(g))
            },
        )
    }

    /// Gets or registers a histogram with the default latency layout.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, Histogram::latency_bounds())
    }

    /// Gets or registers a histogram with explicit bounds (the bounds
    /// only apply on first registration).
    pub fn histogram_with(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.get_or_insert(
            name,
            "histogram",
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::with_bounds(bounds);
                (h.clone(), Metric::Histogram(h))
            },
        )
    }

    /// Registers an already-existing counter handle under `name`, so a
    /// component created before any registry existed can surface its
    /// live counter without resetting it. Replaces a previous counter of
    /// the same name; panics if `name` holds a different metric kind.
    pub fn register_counter(&self, name: &str, counter: &Counter) {
        let mut metrics = self.metrics.write().expect("metrics registry poisoned");
        if let Some(existing) = metrics.get(name) {
            assert!(
                matches!(existing, Metric::Counter(_)),
                "metric {name:?} already registered as a non-counter"
            );
        }
        metrics.insert(name.to_string(), Metric::Counter(counter.clone()));
    }

    /// [`MetricsRegistry::register_counter`] for histograms: surfaces an
    /// existing handle (and its accumulated observations) under `name`.
    pub fn register_histogram(&self, name: &str, histogram: &Histogram) {
        let mut metrics = self.metrics.write().expect("metrics registry poisoned");
        if let Some(existing) = metrics.get(name) {
            assert!(
                matches!(existing, Metric::Histogram(_)),
                "metric {name:?} already registered as a non-histogram"
            );
        }
        metrics.insert(name.to_string(), Metric::Histogram(histogram.clone()));
    }

    /// Registers (or replaces) a derived gauge computed at snapshot
    /// time — hit rates, lag, anything that is a pure function of other
    /// metrics. The closure must itself be label-safe: it returns a
    /// number and must not capture labelled data.
    pub fn register_derived(&self, name: &str, f: impl Fn() -> f64 + Send + Sync + 'static) {
        self.metrics
            .write()
            .expect("metrics registry poisoned")
            .insert(name.to_string(), Metric::Derived(Arc::new(f)));
    }

    /// Removes a metric (used when a subsystem is disabled so its stale
    /// zeros do not linger in snapshots).
    pub fn unregister(&self, name: &str) {
        self.metrics
            .write()
            .expect("metrics registry poisoned")
            .remove(name);
    }

    /// Registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics
            .read()
            .expect("metrics registry poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Snapshot of every metric as JSON: counters and gauges as
    /// integers, derived gauges as floats, histograms as
    /// `{count, sum, p50, p99, p999}` objects.
    pub fn snapshot(&self) -> Value {
        // Clone handles out first: derived closures may read other
        // subsystems' state and must not run under the registry lock.
        let entries: Vec<(String, Metric)> = {
            let metrics = self.metrics.read().expect("metrics registry poisoned");
            metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        let mut out = Value::object();
        for (name, metric) in entries {
            match metric {
                Metric::Counter(c) => {
                    out.set(&name, c.get() as i64);
                }
                Metric::Gauge(g) => {
                    out.set(&name, g.get());
                }
                Metric::Derived(f) => {
                    out.set(&name, f());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut v = Value::object();
                    v.set("count", snap.count() as i64);
                    v.set("sum", snap.sum as i64);
                    v.set("p50", snap.quantile(0.50) as i64);
                    v.set("p99", snap.quantile(0.99) as i64);
                    v.set("p999", snap.quantile(0.999) as i64);
                    out.set(&name, v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.count");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("a.count").get(), 5, "same handle by name");
        let g = reg.gauge("a.depth");
        g.set(7);
        g.add(-2);
        assert_eq!(reg.gauge("a.depth").get(), 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        for v in [1, 9, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5131);
        // Ranks: 1..=3 land in buckets [<=10 x3], 4..=5 in <=100, 6 overflow.
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(0.75), 100);
        assert_eq!(h.quantile(1.0), 1000, "overflow saturates to last bound");
        assert_eq!(Histogram::new().quantile(0.99), 0, "empty reports zero");
    }

    #[test]
    fn snapshot_merge_equals_combined_stream() {
        let a = Histogram::with_bounds(&[10, 100]);
        let b = Histogram::with_bounds(&[10, 100]);
        let both = Histogram::with_bounds(&[10, 100]);
        for v in [1u64, 50, 200] {
            a.observe(v);
            both.observe(v);
        }
        for v in [5u64, 500] {
            b.observe(v);
            both.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn derived_gauge_snapshots_as_float() {
        let reg = MetricsRegistry::new();
        let hits = reg.counter("cache.hits");
        let misses = reg.counter("cache.misses");
        hits.add(3);
        misses.inc();
        let (h2, m2) = (hits.clone(), misses.clone());
        reg.register_derived("cache.hit_rate", move || {
            let (h, m) = (h2.get(), m2.get());
            if h + m == 0 {
                0.0
            } else {
                h as f64 / (h + m) as f64
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.get("cache.hits").and_then(Value::as_i64), Some(3));
        let rate = snap.get("cache.hit_rate").and_then(Value::as_f64).unwrap();
        assert!((rate - 0.75).abs() < 1e-9, "{rate}");
    }

    #[test]
    fn unregister_removes_from_snapshot() {
        let reg = MetricsRegistry::new();
        reg.counter("gone");
        reg.unregister("gone");
        assert!(reg.snapshot().get("gone").is_none());
    }
}
