//! Label-safe observability for SafeWeb.
//!
//! An IFC system has a constraint ordinary middleware does not:
//! telemetry is an **output channel**. Every counter name, span
//! annotation and health field this crate records may be scraped by an
//! operator whose clearance is unrelated to the data flowing through
//! the system, so nothing principal- or document-derived may ever reach
//! a telemetry sink. The contract, enforced by the `telemetry-hygiene`
//! rule in `safeweb-lint`:
//!
//! * metric names and span names are **author-written structure** —
//!   route patterns, topic names, unit names, component names;
//! * span annotations carry at most an interned label-set **id** (a
//!   `u32` handle that reveals which lattice point data sat at, never
//!   what the data was), durations, and counts;
//! * document fields, payload bytes, usernames and other
//!   principal-derived strings are banned from every record call.
//!
//! Two halves:
//!
//! * [`metrics`] — a registry of named counters, gauges and
//!   fixed-bucket histograms. The record paths are lock-free (single
//!   relaxed atomic RMWs); the registry lock is only taken to look a
//!   handle up by name, so hot paths hold their handles.
//! * [`trace`] — a `Copy` [`TraceId`] minted at the frontend (or at
//!   first publish for engine-originated events), threaded through
//!   `LabelledEvent`, scheduler activations, broker delivery and
//!   docstore writes; spans land in bounded per-component rings and
//!   [`Tracer::trace`] stitches one request's path back together.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use trace::{
    begin_activation, current_trace, end_activation, now_ns, record_span, trace_scope, tracer,
    SlowActivation, Span, TraceId, TraceScope, Tracer,
};
