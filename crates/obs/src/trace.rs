//! End-to-end tracing: trace ids, spans, per-component rings, and the
//! slow-activation capture buffer.
//!
//! A [`TraceId`] is a `Copy` 64-bit handle minted once per causal chain
//! — at the frontend when a request arrives, or at first publish for an
//! engine-originated event — and threaded through `LabelledEvent`,
//! scheduler activations, broker delivery and docstore writes. Each
//! component records [`Span`]s into a bounded ring; [`Tracer::trace`]
//! stitches one id's spans back into the request's path.
//!
//! The tracer is process-global (ids are globally unique, and spans for
//! one request cross every component in the process), unlike the
//! instance-scoped metrics registry. Span *names* obey the crate-level
//! label-safety contract: route patterns, topics, unit names — never
//! payloads or principals. The only per-datum annotation a span may
//! carry is an interned label-set id.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::Instant;

use safeweb_json::Value;

/// Spans retained per component ring.
const RING_CAP: usize = 4096;
/// Slow activations retained.
const SLOW_CAP: usize = 256;

/// A `Copy` identifier for one causal chain (one HTTP request, or one
/// engine-originated event cascade). Zero means "not traced".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The absent trace id.
    pub const UNSET: TraceId = TraceId(0);

    /// Mints a fresh process-unique id (never [`TraceId::UNSET`]).
    pub fn mint() -> TraceId {
        static SEED: OnceLock<u64> = OnceLock::new();
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let seed = *SEED.get_or_init(|| {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            // Low bits stay zero so the per-process counter, which
            // occupies them, cannot collide with the seed's entropy.
            (nanos ^ (u64::from(std::process::id()) << 32)) << 20
        });
        loop {
            let id = seed.wrapping_add(NEXT.fetch_add(1, Ordering::Relaxed));
            if id != 0 {
                return TraceId(id);
            }
        }
    }

    /// Whether this id identifies a trace (non-zero).
    pub fn is_set(self) -> bool {
        self.0 != 0
    }

    /// Raw value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds from a raw value (0 is [`TraceId::UNSET`]).
    pub fn from_u64(v: u64) -> TraceId {
        TraceId(v)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl FromStr for TraceId {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<TraceId, Self::Err> {
        u64::from_str_radix(s, 16).map(TraceId)
    }
}

/// Monotonic nanoseconds since process start — the shared clock every
/// span timestamp uses, so spans from different threads order.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now()
        .saturating_duration_since(epoch)
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64
}

/// One recorded hop of a trace.
#[derive(Clone, Debug)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// Which component recorded it (`"frontend"`, `"broker"`, …).
    pub component: &'static str,
    /// Author-written structure only: route pattern, topic, unit name.
    pub name: Box<str>,
    /// Start, on the [`now_ns`] clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Optional interned label-set (or privilege-set) id annotation.
    pub label: Option<u32>,
    /// Global record order, for stable sorting of same-start spans.
    pub seq: u64,
}

impl Span {
    fn to_json(&self) -> Value {
        let mut v = Value::object();
        v.set("component", self.component);
        v.set("name", self.name.as_ref());
        v.set("start_ns", self.start_ns as i64);
        v.set("dur_ns", self.dur_ns as i64);
        if let Some(label) = self.label {
            v.set("label_set_id", label);
        }
        v
    }
}

/// One activation that blew past the scheduler's slow threshold,
/// captured with every trace id it touched so the span chains can be
/// pulled up for profiling.
#[derive(Clone, Debug)]
pub struct SlowActivation {
    /// The scheduler task name (a unit name — author-written).
    pub task: Box<str>,
    /// Activation wall time in nanoseconds.
    pub dur_ns: u64,
    /// Trace ids of the messages processed in this activation.
    pub traces: Vec<TraceId>,
}

/// One component's bounded span ring, tagged with the component name.
type ComponentRing = (&'static str, Mutex<VecDeque<Span>>);

/// The process-global span store: one bounded ring per component, plus
/// the slow-activation buffer.
pub struct Tracer {
    rings: RwLock<Vec<ComponentRing>>,
    slow: Mutex<VecDeque<SlowActivation>>,
    seq: AtomicU64,
    enabled: AtomicBool,
}

/// The process-global [`Tracer`].
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        rings: RwLock::new(Vec::new()),
        slow: Mutex::new(VecDeque::new()),
        seq: AtomicU64::new(0),
        enabled: AtomicBool::new(true),
    })
}

impl Tracer {
    /// Whether span recording is on (default: on).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns span recording on or off process-wide. Trace ids keep
    /// flowing either way (they are a `Copy` field on events); only the
    /// ring writes stop.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Records a finished span into its component ring. No-op when
    /// disabled or when `trace` is unset.
    pub fn record(&self, mut span: Span) {
        if !self.enabled() || !span.trace.is_set() {
            return;
        }
        span.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let rings = self.rings.read().expect("tracer rings poisoned");
        if let Some((_, ring)) = rings.iter().find(|(c, _)| *c == span.component) {
            push_bounded(ring, span);
            return;
        }
        drop(rings);
        let mut rings = self.rings.write().expect("tracer rings poisoned");
        if let Some((_, ring)) = rings.iter().find(|(c, _)| *c == span.component) {
            push_bounded(ring, span);
            return;
        }
        let component = span.component;
        let ring = Mutex::new(VecDeque::with_capacity(64));
        push_bounded(&ring, span);
        rings.push((component, ring));
    }

    /// Reconstructs one trace: every retained span with this id, across
    /// all components, ordered by start time (record order breaks ties).
    pub fn trace(&self, id: TraceId) -> Vec<Span> {
        let mut out = Vec::new();
        if !id.is_set() {
            return out;
        }
        let rings = self.rings.read().expect("tracer rings poisoned");
        for (_, ring) in rings.iter() {
            let ring = ring.lock().expect("tracer ring poisoned");
            out.extend(ring.iter().filter(|s| s.trace == id).cloned());
        }
        drop(rings);
        out.sort_by_key(|s| (s.start_ns, s.seq));
        out
    }

    /// [`Tracer::trace`] rendered as JSON (the `/__obs/trace/:id` body).
    pub fn trace_json(&self, id: TraceId) -> Value {
        let spans = self.trace(id);
        let mut arr = Value::array();
        if let Some(items) = arr.as_array_mut() {
            items.extend(spans.iter().map(Span::to_json));
        }
        let mut out = Value::object();
        out.set("trace", id.to_string());
        out.set("spans", arr);
        out
    }

    /// Records one over-threshold activation.
    pub fn record_slow(&self, task: &str, dur_ns: u64, traces: Vec<TraceId>) {
        let mut slow = self.slow.lock().expect("tracer slow buffer poisoned");
        if slow.len() >= SLOW_CAP {
            slow.pop_front();
        }
        slow.push_back(SlowActivation {
            task: task.into(),
            dur_ns,
            traces,
        });
    }

    /// The retained slow activations, oldest first.
    pub fn slow_activations(&self) -> Vec<SlowActivation> {
        self.slow
            .lock()
            .expect("tracer slow buffer poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

fn push_bounded(ring: &Mutex<VecDeque<Span>>, span: Span) {
    let mut ring = ring.lock().expect("tracer ring poisoned");
    if ring.len() >= RING_CAP {
        ring.pop_front();
    }
    ring.push_back(span);
}

/// Records a span that started at `start_ns` and ends now.
///
/// This is the one-line helper every instrumentation site uses:
///
/// ```
/// let start = safeweb_obs::now_ns();
/// let id = safeweb_obs::TraceId::mint();
/// // ... do the work ...
/// safeweb_obs::record_span("frontend", "/records/:mid", id, start, None);
/// ```
pub fn record_span(
    component: &'static str,
    name: &str,
    trace: TraceId,
    start_ns: u64,
    label: Option<u32>,
) {
    let t = tracer();
    if !t.enabled() || !trace.is_set() {
        return;
    }
    t.record(Span {
        trace,
        component,
        name: name.into(),
        start_ns,
        dur_ns: now_ns().saturating_sub(start_ns),
        label,
        seq: 0,
    });
}

thread_local! {
    static CURRENT_TRACE: Cell<TraceId> = const { Cell::new(TraceId::UNSET) };
    static ACTIVATION_TRACES: RefCell<Option<Vec<TraceId>>> = const { RefCell::new(None) };
}

/// The trace id active on this thread ([`TraceId::UNSET`] outside any
/// [`trace_scope`]). `LabelledEvent` construction reads this, which is
/// how a frontend-minted id propagates into everything a handler or a
/// unit callback publishes.
pub fn current_trace() -> TraceId {
    CURRENT_TRACE.with(Cell::get)
}

/// RAII guard restoring the previous thread-trace on drop.
#[must_use = "dropping the scope immediately restores the previous trace"]
pub struct TraceScope {
    prev: TraceId,
}

/// Sets the thread's current trace for the lifetime of the returned
/// guard, and (inside an activation window) records the id for
/// slow-activation capture.
pub fn trace_scope(id: TraceId) -> TraceScope {
    let prev = CURRENT_TRACE.with(|c| c.replace(id));
    if id.is_set() {
        ACTIVATION_TRACES.with(|t| {
            if let Some(traces) = t.borrow_mut().as_mut() {
                if traces.last() != Some(&id) && traces.len() < 64 {
                    traces.push(id);
                }
            }
        });
    }
    TraceScope { prev }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

/// Opens an activation window on this thread: every traced scope
/// entered until [`end_activation`] is collected so a slow activation
/// can name the traces it processed. Used by the scheduler around each
/// task activation.
pub fn begin_activation() {
    ACTIVATION_TRACES.with(|t| *t.borrow_mut() = Some(Vec::new()));
}

/// Closes the activation window, returning the trace ids seen.
pub fn end_activation() -> Vec<TraceId> {
    ACTIVATION_TRACES.with(|t| t.borrow_mut().take().unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_unique_and_set() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert!(a.is_set() && b.is_set());
        assert_ne!(a, b);
    }

    #[test]
    fn display_roundtrips() {
        let id = TraceId::mint();
        let parsed: TraceId = id.to_string().parse().unwrap();
        assert_eq!(id, parsed);
        assert!("zz".parse::<TraceId>().is_err());
    }

    #[test]
    fn trace_stitches_across_components_in_order() {
        let id = TraceId::mint();
        let other = TraceId::mint();
        let t0 = now_ns();
        record_span("alpha", "first", id, t0, None);
        record_span("beta", "second", id, t0 + 10, Some(7));
        record_span("alpha", "noise", other, t0, None);
        let spans = tracer().trace(id);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].component, "alpha");
        assert_eq!(spans[1].component, "beta");
        assert_eq!(spans[1].label, Some(7));
        let json = tracer().trace_json(id);
        assert_eq!(
            json.get("spans")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(2)
        );
    }

    #[test]
    fn unset_trace_records_nothing() {
        record_span("gamma", "x", TraceId::UNSET, now_ns(), None);
        assert!(tracer().trace(TraceId::UNSET).is_empty());
    }

    #[test]
    fn scope_nests_and_restores() {
        assert_eq!(current_trace(), TraceId::UNSET);
        let a = TraceId::mint();
        let b = TraceId::mint();
        {
            let _outer = trace_scope(a);
            assert_eq!(current_trace(), a);
            {
                let _inner = trace_scope(b);
                assert_eq!(current_trace(), b);
            }
            assert_eq!(current_trace(), a);
        }
        assert_eq!(current_trace(), TraceId::UNSET);
    }

    #[test]
    fn activation_window_collects_scoped_traces() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        begin_activation();
        {
            let _s = trace_scope(a);
        }
        {
            let _s = trace_scope(b);
        }
        {
            let _again = trace_scope(b); // consecutive duplicate suppressed
        }
        assert_eq!(end_activation(), vec![a, b]);
        assert!(end_activation().is_empty(), "window closed");
    }

    #[test]
    fn slow_buffer_is_bounded() {
        for i in 0..(SLOW_CAP + 10) {
            tracer().record_slow("unit", i as u64, Vec::new());
        }
        let slow = tracer().slow_activations();
        assert_eq!(slow.len(), SLOW_CAP);
        assert_eq!(slow.last().unwrap().dur_ns, (SLOW_CAP + 9) as u64);
    }
}
