//! Bounded per-task inboxes: the backpressure edge of the scheduler.

use std::collections::VecDeque;
use std::fmt;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by a blocking send; carries the unsent message.
pub struct SendError<M>(pub M);

impl<M> fmt::Debug for SendError<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<M> fmt::Display for SendError<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending to a closed task")
    }
}

/// Error returned by a non-blocking send; carries the unsent message.
pub enum TrySendError<M> {
    /// The inbox is at capacity; the message was not queued.
    Full(M),
    /// The task is closed (scheduler shut down or task poisoned).
    Closed(M),
}

impl<M> fmt::Debug for TrySendError<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
            TrySendError::Closed(_) => f.write_str("TrySendError::Closed(..)"),
        }
    }
}

impl<M> fmt::Display for TrySendError<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("task inbox is full"),
            TrySendError::Closed(_) => f.write_str("sending to a closed task"),
        }
    }
}

struct State<M> {
    queue: VecDeque<M>,
    closed: bool,
}

/// A bounded MPSC queue. Pushes past `cap` block (or fail, for
/// [`Inbox::try_push`]) until the scheduler drains; the single consumer
/// is whichever worker currently runs the owning task.
pub(crate) struct Inbox<M> {
    state: Mutex<State<M>>,
    cap: usize,
    /// Signalled whenever queue space frees up or the inbox closes.
    space: Condvar,
    /// Scheduler-wide queued-message counter shared by every inbox of
    /// one pool; maintained on push/drain/close so an aggregate depth
    /// read costs one atomic load instead of a scan over all tasks.
    depth: Arc<AtomicUsize>,
}

/// What a completed push observed; `was_empty` drives the empty→non-empty
/// wakeup (pushes onto a non-empty inbox need no notify — the task is
/// already queued, running, or about to re-check).
pub(crate) struct Pushed {
    pub(crate) was_empty: bool,
}

impl<M> Inbox<M> {
    pub(crate) fn new(cap: usize, depth: Arc<AtomicUsize>) -> Inbox<M> {
        Inbox {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            cap: cap.max(1),
            space: Condvar::new(),
            depth,
        }
    }

    /// Blocking push. `bypass_cap` is set for self-sends (a task sending
    /// to itself from its own handler), which must not block: the worker
    /// executing the task is the only thread that could ever drain it.
    pub(crate) fn push(&self, msg: M, bypass_cap: bool) -> Result<Pushed, SendError<M>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !state.closed && !bypass_cap && state.queue.len() >= self.cap {
            state = self.space.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if state.closed {
            return Err(SendError(msg));
        }
        let was_empty = state.queue.is_empty();
        state.queue.push_back(msg);
        self.depth.fetch_add(1, Ordering::Relaxed);
        Ok(Pushed { was_empty })
    }

    /// Non-blocking push (timer ticks use this: a tick into a full inbox
    /// is dropped, coalescing exactly like a lagging tick channel).
    pub(crate) fn try_push(&self, msg: M) -> Result<Pushed, TrySendError<M>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(TrySendError::Closed(msg));
        }
        if state.queue.len() >= self.cap {
            return Err(TrySendError::Full(msg));
        }
        let was_empty = state.queue.is_empty();
        state.queue.push_back(msg);
        self.depth.fetch_add(1, Ordering::Relaxed);
        Ok(Pushed { was_empty })
    }

    /// Drains up to `burst` messages into `into`, waking blocked senders.
    pub(crate) fn drain(&self, burst: usize, into: &mut Vec<M>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let n = state.queue.len().min(burst);
        into.extend(state.queue.drain(..n));
        if n > 0 {
            self.depth.fetch_sub(n, Ordering::Relaxed);
            self.space.notify_all();
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Closes the inbox. Blocked senders wake with [`SendError`]; when
    /// `discard` is set (task poisoned by a panic), already-queued
    /// messages are dropped too — a poisoned task processes nothing more.
    pub(crate) fn close(&self, discard: bool) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        if discard {
            self.depth.fetch_sub(state.queue.len(), Ordering::Relaxed);
            state.queue.clear();
        }
        self.space.notify_all();
    }
}
