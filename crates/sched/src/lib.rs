//! # safeweb-sched
//!
//! A work-stealing task scheduler that multiplexes thousands of
//! event-processing units onto a **fixed** pool of worker threads. It
//! replaces the engine's original thread-per-unit execution model, whose
//! OS-thread cost capped a deployment at a few hundred units; with the
//! scheduler, one SafeWeb process holds one isolated unit per tenant for
//! thousands of tenants.
//!
//! ## Model
//!
//! A task is a named message-driven actor: a bounded inbox plus a
//! handler closure. Senders push messages through a cloneable
//! [`TaskSender`]; the scheduler runs the handler over batches of queued
//! messages on whichever worker picks the task up. Three guarantees hold
//! for every task, under any stealing interleaving:
//!
//! * **FIFO** — messages are handed to the handler in exactly the order
//!   their sends completed;
//! * **no concurrent execution** — a task's handler never runs on two
//!   workers at once (tasks move between workers, but one at a time);
//! * **bounded inboxes** — [`TaskSender::send`] blocks while the task's
//!   inbox is at capacity, pushing backpressure onto producers instead of
//!   buffering unboundedly. (Sends from the pool's own worker threads
//!   bypass the cap — see the backpressure section below.)
//!
//! `tests/sched_props.rs` holds all three properties against a
//! sequential executable specification under randomized worker counts,
//! message interleavings and handler delays, in the style of the broker's
//! `oracle::LinearBroker` equivalence suite.
//!
//! ## Scheduling
//!
//! Each worker owns a run queue of ready tasks; a task whose inbox goes
//! empty→non-empty is enqueued on the notifying worker's own queue (or a
//! shared injector queue when the sender is not a worker). An idle worker
//! pops its own queue first, then the injector, then **steals** from the
//! other workers' queues, so a burst aimed at one worker's tasks spreads
//! across the pool. Per activation a task drains at most
//! [`SchedulerOptions::burst`] messages before re-queuing itself at the
//! back, so one hot task cannot starve the rest.
//!
//! A handler panic is **isolated**: the worker survives, the panicking
//! task is poisoned (inbox closed, pending messages dropped) and the
//! panic is reported through [`Scheduler::panics`]; every other task keeps
//! running.
//!
//! ## Backpressure
//!
//! The cap applies to **external** senders only: sends from one of the
//! pool's own worker threads (a handler publishing to itself or to a
//! sibling task) bypass it, because a worker blocked on a sibling's full
//! inbox can never be the worker that drains it — on a one-worker pool a
//! single capped task→task edge would deadlock, and on any pool a
//! saturated cycle would. Backpressure therefore holds where load
//! *enters* the pool; what a capped ingress admits bounds the in-pool
//! fan-out (times the pipeline's amplification factor).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod inbox;
mod scheduler;

pub use inbox::{SendError, TrySendError};
pub use scheduler::{Scheduler, SchedulerOptions, TaskPanic, TaskSender};
