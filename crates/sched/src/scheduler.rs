//! The worker pool, run queues, stealing and the per-task state machine.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use std::sync::{Condvar, Mutex};
use std::time::Instant;

use safeweb_obs::{Counter, Histogram, MetricsRegistry};

use crate::inbox::{Inbox, Pushed, SendError, TrySendError};

/// Tuning knobs for a [`Scheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerOptions {
    /// Worker threads. `0` picks one per available core — the production
    /// setting, making the thread count `min(requested, cores)`-shaped
    /// and independent of task count. Explicit values are honored as
    /// given (tests oversubscribe a small machine on purpose to provoke
    /// stealing interleavings).
    pub workers: usize,
    /// Per-task inbox capacity; sends beyond it block the producer.
    pub inbox_cap: usize,
    /// Most messages one activation hands the handler before the task
    /// re-queues at the back of the run queue (fairness between tasks).
    pub burst: usize,
    /// Thread-name prefix for the worker threads.
    pub name: String,
    /// Registry for the scheduler's metrics (`sched.activation_ns`,
    /// `sched.steals`, `sched.parks`, `sched.queued_messages`). `None`
    /// keeps detached handles: everything still counts, nothing is
    /// published to a snapshot.
    pub metrics: Option<MetricsRegistry>,
    /// Activations at or above this many nanoseconds are captured —
    /// task name, duration and the trace ids processed — into the
    /// process tracer's slow-activation buffer
    /// ([`safeweb_obs::Tracer::slow_activations`]). `None` disables
    /// capture (the activation histogram still records).
    pub slow_activation_ns: Option<u64>,
}

impl Default for SchedulerOptions {
    fn default() -> SchedulerOptions {
        SchedulerOptions {
            workers: 0,
            inbox_cap: 1024,
            burst: 128,
            name: "safeweb-sched".to_string(),
            metrics: None,
            slow_activation_ns: None,
        }
    }
}

/// The scheduler's metric handles (detached unless a registry was
/// supplied in [`SchedulerOptions::metrics`]).
#[derive(Debug, Default)]
struct SchedMetrics {
    activation_ns: Histogram,
    steals: Counter,
    parks: Counter,
}

impl SchedMetrics {
    fn registered(
        registry: &MetricsRegistry,
        depth: &Arc<AtomicUsize>,
        inbox_cap: usize,
    ) -> SchedMetrics {
        let depth = Arc::clone(depth);
        registry.register_derived("sched.queued_messages", move || {
            depth.load(Ordering::Relaxed) as f64
        });
        // The static cap next to the live depth, so an ops page can
        // render "queued / cap" without knowing the builder options.
        registry.register_derived("sched.inbox_cap", move || inbox_cap as f64);
        SchedMetrics {
            activation_ns: registry.histogram("sched.activation_ns"),
            steals: registry.counter("sched.steals"),
            parks: registry.counter("sched.parks"),
        }
    }
}

/// A handler panic the scheduler contained: the task was poisoned, the
/// worker and every other task kept running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The poisoned task's name.
    pub task: String,
    /// The panic payload, rendered as text.
    pub message: String,
}

// Task states. A task is in exactly one queue iff its state is QUEUED;
// only the worker that dequeued it moves QUEUED→RUNNING, which is what
// makes concurrent execution impossible.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
/// Running, with a notify observed mid-run: re-queue on completion.
const RUNNING_NOTIFIED: u8 = 3;

/// Empty queue scans a worker burns through (with `spin_loop` hints)
/// before it parks on the condvar. Under load, new work usually arrives
/// within this window and the worker never pays the futex round-trip;
/// once the pool is truly idle the spin ends and the worker parks with
/// **no timeout**, so an idle pool makes zero wakeups per second.
const IDLE_SPINS: usize = 64;

/// Distinguishes tasks across every scheduler in the process, so the
/// self-send check cannot confuse tasks of nested schedulers.
static NEXT_TASK_UID: AtomicU64 = AtomicU64::new(1);
static NEXT_SCHED_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The task whose handler is executing on this thread (0 = none).
    static CURRENT_TASK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    /// (scheduler id, worker index) when this thread is a pool worker.
    static WORKER: std::cell::Cell<(u64, usize)> = const { std::cell::Cell::new((0, 0)) };
}

type Handler<M> = Box<dyn FnMut(&mut Vec<M>) + Send>;

struct Task<M> {
    uid: u64,
    name: String,
    state: AtomicU8,
    inbox: Inbox<M>,
    /// Uncontended by construction (no concurrent execution); the mutex
    /// only exists to make the `FnMut` shareable through the `Arc`.
    handler: Mutex<Handler<M>>,
}

struct Parker {
    lock: Mutex<()>,
    cv: Condvar,
    /// Wakeup generation, bumped under `lock` by every notify. A worker
    /// records the generation before parking and waits only while it is
    /// unchanged, so a notify that fires between the worker's last queue
    /// scan and its `cv.wait` can never be lost.
    wakeups: AtomicU64,
}

struct Inner<M> {
    id: u64,
    burst: usize,
    /// One run queue per worker plus a shared injector for enqueues from
    /// non-worker threads (index `workers` in `queues`).
    queues: Vec<Mutex<VecDeque<Arc<Task<M>>>>>,
    workers: usize,
    /// Tasks queued anywhere; lets idle workers sleep without scanning.
    pending: AtomicUsize,
    sleepers: AtomicUsize,
    parker: Parker,
    stopping: AtomicBool,
    tasks: Mutex<Vec<Arc<Task<M>>>>,
    panics: Mutex<Vec<TaskPanic>>,
    /// Messages queued across every task inbox (see [`Inbox`]); one
    /// relaxed load serves the engine/deployment stats surface.
    depth: Arc<AtomicUsize>,
    metrics: SchedMetrics,
    /// Slow-activation capture threshold (ns); `None` disables capture.
    slow_ns: Option<u64>,
}

impl<M: Send + 'static> Inner<M> {
    /// Queues a ready task: on a worker thread, onto that worker's own
    /// queue; anywhere else, onto the shared injector.
    fn enqueue(&self, task: Arc<Task<M>>) {
        let (sched, index) = WORKER.with(std::cell::Cell::get);
        let queue = if sched == self.id {
            &self.queues[index]
        } else {
            &self.queues[self.workers]
        };
        queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
        self.pending.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.parker.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.parker.wakeups.fetch_add(1, Ordering::SeqCst);
            self.parker.cv.notify_one();
        }
    }

    /// The empty→non-empty inbox transition makes a task ready.
    fn notify(&self, task: &Arc<Task<M>>) {
        loop {
            match task
                .state
                .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    self.enqueue(Arc::clone(task));
                    return;
                }
                Err(QUEUED) | Err(RUNNING_NOTIFIED) => return,
                Err(RUNNING) => {
                    if task
                        .state
                        .compare_exchange(
                            RUNNING,
                            RUNNING_NOTIFIED,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        return;
                    }
                    // Raced with the run completing; retry from the top.
                }
                Err(_) => unreachable!("invalid task state"),
            }
        }
    }

    /// Own queue first, then the injector, then steal from the others.
    fn find_work(&self, index: usize) -> Option<Arc<Task<M>>> {
        let order = (0..self.queues.len()).map(|off| {
            match off {
                0 => index,
                1 => self.workers, // injector
                _ => {
                    // Remaining queues in rotation, skipping our own and
                    // the injector (both already tried).
                    let mut victim = (index + off - 1) % self.workers;
                    if victim == index {
                        victim = (victim + 1) % self.workers;
                    }
                    victim
                }
            }
        });
        for queue_index in order {
            if let Some(task) = self.queues[queue_index]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                if queue_index != index && queue_index != self.workers {
                    self.metrics.steals.inc();
                }
                return Some(task);
            }
        }
        None
    }

    fn run_task(&self, task: &Arc<Task<M>>, scratch: &mut Vec<M>) {
        task.state.store(RUNNING, Ordering::SeqCst);
        scratch.clear();
        task.inbox.drain(self.burst, scratch);
        if !scratch.is_empty() {
            let mut handler = task.handler.lock().unwrap_or_else(|e| e.into_inner());
            CURRENT_TASK.with(|current| current.set(task.uid));
            // Activation latency covers handler time only (not queueing);
            // the capture window collects trace ids the handler scopes
            // into, so a slow activation can name what it was processing.
            let capture = self.slow_ns.is_some();
            if capture {
                safeweb_obs::begin_activation();
            }
            let started = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| handler(scratch)));
            let elapsed = started.elapsed();
            let traces = if capture {
                safeweb_obs::end_activation()
            } else {
                Vec::new()
            };
            CURRENT_TASK.with(|current| current.set(0));
            drop(handler);
            scratch.clear();
            self.metrics.activation_ns.observe_ns(elapsed);
            let elapsed_ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
            if self
                .slow_ns
                .is_some_and(|threshold| elapsed_ns >= threshold)
            {
                safeweb_obs::tracer().record_slow(&task.name, elapsed_ns, traces);
            }
            if let Err(payload) = result {
                self.poison(task, &*payload);
            }
        }
        // Completion: settle back to IDLE unless a notify arrived mid-run
        // or messages remain (a burst-capped drain, or a send that raced
        // the IDLE transition without its notify landing yet).
        match task
            .state
            .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => {
                if task.inbox.len() > 0
                    && task
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    self.enqueue(Arc::clone(task));
                }
            }
            Err(RUNNING_NOTIFIED) => {
                task.state.store(QUEUED, Ordering::SeqCst);
                self.enqueue(Arc::clone(task));
            }
            Err(_) => unreachable!("only the running worker completes a task"),
        }
    }

    fn poison(&self, task: &Task<M>, payload: &(dyn std::any::Any + Send)) {
        task.inbox.close(true);
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        self.panics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(TaskPanic {
                task: task.name.clone(),
                message,
            });
    }

    /// Brief spin between an empty scan and a full park; returns whether
    /// work (or shutdown) showed up while spinning.
    fn spin_for_work(&self) -> bool {
        for _ in 0..IDLE_SPINS {
            if self.pending.load(Ordering::SeqCst) > 0 || self.stopping.load(Ordering::SeqCst) {
                return true;
            }
            std::hint::spin_loop();
        }
        false
    }

    /// Event-counted park with no timeout. Lost-wakeup safety is
    /// structural, not probabilistic: `enqueue` publishes `pending`
    /// before reading `sleepers` (both `SeqCst`), and this worker
    /// publishes `sleepers` before re-reading `pending`, so an enqueue
    /// racing the park either sees the sleeper — and then bumps the
    /// wakeup generation *under the parker lock* before notifying — or
    /// left `pending` visible to the re-check below. The wait condition
    /// re-checks both the generation and `pending` under that same lock,
    /// so there is no window in which a notify can slip between the
    /// decision to sleep and the sleep itself.
    fn park(&self) {
        self.metrics.parks.inc();
        let entry = self.parker.wakeups.load(Ordering::SeqCst);
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        {
            let mut guard = self.parker.lock.lock().unwrap_or_else(|e| e.into_inner());
            while self.parker.wakeups.load(Ordering::SeqCst) == entry
                && self.pending.load(Ordering::SeqCst) == 0
                && !self.stopping.load(Ordering::SeqCst)
            {
                guard = self
                    .parker
                    .cv
                    .wait(guard)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    fn worker_loop(self: &Arc<Self>, index: usize) {
        WORKER.with(|worker| worker.set((self.id, index)));
        let mut scratch = Vec::new();
        loop {
            match self.find_work(index) {
                Some(task) => self.run_task(&task, &mut scratch),
                None => {
                    if self.stopping.load(Ordering::SeqCst) {
                        // Queues empty and no new sends can arrive
                        // (inboxes are closed): this worker is done.
                        return;
                    }
                    if !self.spin_for_work() {
                        self.park();
                    }
                }
            }
        }
    }
}

/// A fixed-size worker pool running message-driven tasks. See the crate
/// docs for the scheduling model and guarantees.
pub struct Scheduler<M: Send + 'static> {
    inner: Arc<Inner<M>>,
    inbox_cap: usize,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl<M: Send + 'static> Scheduler<M> {
    /// Starts the worker pool. With `workers == 0` the pool gets one
    /// worker per available core.
    pub fn new(options: SchedulerOptions) -> Scheduler<M> {
        let workers = match options.workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            n => n,
        }
        .max(1);
        let depth = Arc::new(AtomicUsize::new(0));
        let inbox_cap = options.inbox_cap.max(1);
        let metrics = match &options.metrics {
            Some(registry) => SchedMetrics::registered(registry, &depth, inbox_cap),
            None => SchedMetrics::default(),
        };
        let inner = Arc::new(Inner {
            id: NEXT_SCHED_ID.fetch_add(1, Ordering::Relaxed),
            burst: options.burst.max(1),
            queues: (0..=workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            workers,
            pending: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            parker: Parker {
                lock: Mutex::new(()),
                cv: Condvar::new(),
                wakeups: AtomicU64::new(0),
            },
            stopping: AtomicBool::new(false),
            tasks: Mutex::new(Vec::new()),
            panics: Mutex::new(Vec::new()),
            depth,
            metrics,
            slow_ns: options.slow_activation_ns,
        });
        let threads = (0..workers)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("{}-worker-{index}", options.name))
                    .spawn(move || inner.worker_loop(index))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler {
            inner,
            inbox_cap,
            threads: Mutex::new(threads),
        }
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Messages currently queued across every task inbox — the
    /// scheduler-wide backlog, maintained as one shared atomic so the
    /// read is O(1) regardless of task count.
    pub fn queued_messages(&self) -> usize {
        self.inner.depth.load(Ordering::Relaxed)
    }

    /// Registers a task: a bounded inbox plus a handler the pool invokes
    /// with batches of queued messages (at most
    /// [`SchedulerOptions::burst`] per activation, in send order). The
    /// handler must drain or inspect the batch; the scheduler clears it
    /// afterwards either way.
    ///
    /// Spawning on a scheduler that is already shutting down returns a
    /// sender whose sends fail.
    pub fn spawn(
        &self,
        name: &str,
        handler: impl FnMut(&mut Vec<M>) + Send + 'static,
    ) -> TaskSender<M> {
        let task = Arc::new(Task {
            uid: NEXT_TASK_UID.fetch_add(1, Ordering::Relaxed),
            name: name.to_string(),
            state: AtomicU8::new(IDLE),
            inbox: Inbox::new(self.inbox_cap, Arc::clone(&self.inner.depth)),
            handler: Mutex::new(Box::new(handler)),
        });
        {
            let mut tasks = self.inner.tasks.lock().unwrap_or_else(|e| e.into_inner());
            if self.inner.stopping.load(Ordering::SeqCst) {
                task.inbox.close(true);
            } else {
                tasks.push(Arc::clone(&task));
            }
        }
        TaskSender {
            task,
            inner: Arc::clone(&self.inner),
        }
    }

    /// Handler panics contained so far (each one poisoned its task).
    pub fn panics(&self) -> Vec<TaskPanic> {
        self.inner
            .panics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Graceful shutdown: closes every inbox (senders start failing,
    /// blocked senders wake), lets the workers drain everything already
    /// accepted, then joins them. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        // Closing inboxes under the tasks lock serialises with `spawn`,
        // so no task slips in unclosed.
        {
            let tasks = self.inner.tasks.lock().unwrap_or_else(|e| e.into_inner());
            self.inner.stopping.store(true, Ordering::SeqCst);
            for task in tasks.iter() {
                task.inbox.close(false);
            }
        }
        {
            let _guard = self
                .inner
                .parker
                .lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.inner.parker.wakeups.fetch_add(1, Ordering::SeqCst);
            self.inner.parker.cv.notify_all();
        }
        for thread in self
            .threads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = thread.join();
        }
        // Final sweep, on this thread, after every worker has exited: a
        // send whose inbox push won the race against the close above but
        // whose wakeup had not landed when the workers last scanned the
        // queues leaves messages behind with nobody to run them. The
        // inboxes are closed, so this drains to empty in bounded work —
        // and every send that returned Ok stays processed, as promised.
        let tasks: Vec<Arc<Task<M>>> = self
            .inner
            .tasks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let mut scratch = Vec::new();
        for task in tasks {
            while task.inbox.len() > 0 {
                self.inner.run_task(&task, &mut scratch);
            }
        }
    }
}

impl<M: Send + 'static> Drop for Scheduler<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<M: Send + 'static> std::fmt::Debug for Scheduler<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.inner.workers)
            .finish_non_exhaustive()
    }
}

/// Cloneable, thread-safe sending handle to one task.
pub struct TaskSender<M: Send + 'static> {
    task: Arc<Task<M>>,
    inner: Arc<Inner<M>>,
}

impl<M: Send + 'static> Clone for TaskSender<M> {
    fn clone(&self) -> TaskSender<M> {
        TaskSender {
            task: Arc::clone(&self.task),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Send + 'static> TaskSender<M> {
    /// Queues a message, blocking while the inbox is at capacity — the
    /// backpressure edge for **external** producers (bus frontends, HTTP
    /// workers, importer threads).
    ///
    /// Sends from one of this scheduler's own worker threads — a task
    /// handler publishing to itself or to any sibling task — bypass the
    /// cap instead of blocking: a blocked worker cannot drain anyone's
    /// inbox, so capping intra-pool edges would deadlock a single-worker
    /// pool on the first full sibling inbox (and any pool on a saturated
    /// cycle). Backpressure therefore applies where load enters the
    /// pool; in-pool fan-out is bounded by what the capped ingress
    /// admits times the pipeline's amplification.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] (with the message) if the task is closed:
    /// scheduler shut down, or the task was poisoned by a panic.
    pub fn send(&self, msg: M) -> Result<(), SendError<M>> {
        let pool_thread = WORKER.with(std::cell::Cell::get).0 == self.inner.id;
        let own_task = CURRENT_TASK.with(std::cell::Cell::get) == self.task.uid;
        let pushed = self.task.inbox.push(msg, pool_thread || own_task)?;
        self.after_push(pushed);
        Ok(())
    }

    /// Queues a message without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when the inbox is at capacity,
    /// [`TrySendError::Closed`] when the task is closed; both return the
    /// message.
    pub fn try_send(&self, msg: M) -> Result<(), TrySendError<M>> {
        let pushed = self.task.inbox.try_push(msg)?;
        self.after_push(pushed);
        Ok(())
    }

    fn after_push(&self, pushed: Pushed) {
        if pushed.was_empty {
            self.inner.notify(&self.task);
        }
    }

    /// Messages currently queued in the task's inbox.
    pub fn queued(&self) -> usize {
        self.task.inbox.len()
    }

    /// Whether the task no longer accepts messages.
    pub fn is_closed(&self) -> bool {
        self.task.inbox.is_closed()
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.task.name
    }
}

impl<M: Send + 'static> std::fmt::Debug for TaskSender<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSender")
            .field("task", &self.task.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    /// A reusable open/closed latch: handlers block on `wait` (with a
    /// generous failsafe deadline so a bug cannot hang the suite) until
    /// the test calls `open`. Replaces sleep-polling so the tests are
    /// driven by events, not timing.
    struct Gate {
        state: Mutex<bool>,
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::new(Gate {
                state: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        fn open(&self) {
            let mut open = self.state.lock().unwrap_or_else(|e| e.into_inner());
            *open = true;
            self.cv.notify_all();
        }

        fn wait(&self) {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            let mut open = self.state.lock().unwrap_or_else(|e| e.into_inner());
            while !*open {
                let now = std::time::Instant::now();
                assert!(now < deadline, "gate never opened");
                let (next, _) = self
                    .cv
                    .wait_timeout(open, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                open = next;
            }
        }
    }

    fn options(workers: usize) -> SchedulerOptions {
        SchedulerOptions {
            workers,
            inbox_cap: 8,
            burst: 4,
            name: "sched-test".to_string(),
            ..Default::default()
        }
    }

    #[test]
    fn messages_arrive_in_order() {
        let sched: Scheduler<u32> = Scheduler::new(options(2));
        let log = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        let tx = sched.spawn("t", move |batch| {
            sink.lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(batch.drain(..))
        });
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        sched.shutdown();
        assert_eq!(
            *log.lock().unwrap_or_else(|e| e.into_inner()),
            (0..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shutdown_drains_accepted_messages() {
        let sched: Scheduler<u32> = Scheduler::new(options(1));
        let count = Arc::new(AtomicU32::new(0));
        let counter = Arc::clone(&count);
        // The gate stalls the first activation, so shutdown is called
        // while accepted messages are still queued and must drain them.
        let gate = Gate::new();
        let open = Arc::clone(&gate);
        let tx = sched.spawn("t", move |batch| {
            open.wait();
            counter.fetch_add(batch.len() as u32, Ordering::SeqCst);
            batch.clear();
        });
        for i in 0..8 {
            tx.send(i).unwrap();
        }
        gate.open();
        sched.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 8);
        assert!(tx.send(9).is_err(), "sends fail after shutdown");
    }

    #[test]
    fn panic_poisons_one_task_only() {
        let sched: Scheduler<u32> = Scheduler::new(options(1));
        let bad = sched.spawn("bad", |_batch| panic!("boom {}", 7));
        let count = Arc::new(AtomicU32::new(0));
        let counter = Arc::clone(&count);
        let good = sched.spawn("good", move |batch| {
            counter.fetch_add(batch.len() as u32, Ordering::SeqCst);
            batch.clear();
        });
        bad.send(1).unwrap();
        for i in 0..5 {
            // The poisoned inbox starts refusing at some point; the good
            // task must keep working regardless.
            let _ = bad.send(i);
            good.send(i).unwrap();
        }
        sched.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 5);
        let panics = sched.panics();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].task, "bad");
        assert_eq!(panics[0].message, "boom 7");
        assert!(bad.is_closed());
    }

    #[test]
    fn self_send_bypasses_the_cap() {
        let sched: Scheduler<u32> = Scheduler::new(options(1));
        let holder: Arc<Mutex<Option<TaskSender<u32>>>> = Arc::new(Mutex::new(None));
        let own = Arc::clone(&holder);
        let done = Arc::new(AtomicU32::new(0));
        let signal = Arc::clone(&done);
        let tx = sched.spawn("feedback", move |batch| {
            for msg in batch.drain(..) {
                if msg > 0 {
                    // Refill past the cap from inside the handler: with
                    // cap 8 this would deadlock the only worker if
                    // self-sends blocked.
                    let tx = own
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .clone()
                        .unwrap();
                    for _ in 0..20 {
                        tx.send(0).unwrap();
                    }
                } else {
                    signal.fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        *holder.lock().unwrap_or_else(|e| e.into_inner()) = Some(tx.clone());
        tx.send(1).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) < 20 {
            assert!(std::time::Instant::now() < deadline, "self-send deadlock");
            std::thread::yield_now();
        }
        sched.shutdown();
    }

    #[test]
    fn full_inbox_blocks_the_sender_until_drained() {
        let sched: Scheduler<u32> = Scheduler::new(options(1));
        let gate = Gate::new();
        let open = Arc::clone(&gate);
        let tx = sched.spawn("slow", move |batch| {
            open.wait();
            batch.clear();
        });
        // Fill: the stalled handler eats the first drain, then the cap-8
        // queue fills and the 30-message sender must block.
        let tx2 = tx.clone();
        let sender = std::thread::spawn(move || {
            for i in 0..30 {
                tx2.send(i).unwrap();
            }
        });
        // Deadline wait for the observable condition (inbox at cap)
        // instead of a fixed sleep: the only way the queue reaches the
        // cap is the sender pushing against a stalled handler, at which
        // point its next send is blocked inside `Inbox::push`.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while tx.queued() < 8 {
            assert!(
                std::time::Instant::now() < deadline,
                "sender never reached the cap"
            );
            std::thread::yield_now();
        }
        assert!(!sender.is_finished(), "sender should be blocked at the cap");
        gate.open();
        sender.join().unwrap();
        sched.shutdown();
    }
}
