//! Scheduler property tests, in the style of the broker's
//! `oracle::LinearBroker` equivalence suite: a deliberately trivial
//! **sequential executable specification** says what any correct
//! execution must deliver, and the real work-stealing scheduler is held
//! to it under randomized worker counts, inbox capacities, burst limits,
//! handler delays and producer interleavings.
//!
//! The spec: a task is a FIFO queue processed by at most one executor at
//! a time. Therefore, for every task,
//!
//! 1. the handler observes exactly the messages sent to it, in send
//!    order (per-task FIFO, no loss after a draining shutdown);
//! 2. handler executions never overlap (no concurrent execution), even
//!    while the task migrates between workers through stealing.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use safeweb_sched::{Scheduler, SchedulerOptions};

/// What the sequential specification expects a task to have observed
/// once every send completed and the scheduler drained: the sent
/// sequence itself, unchanged. (This is the scheduler analogue of the
/// linear broker: obviously correct, no concurrency.)
fn oracle(sent: &[u32]) -> Vec<u32> {
    sent.to_vec()
}

#[derive(Debug, Clone)]
struct Plan {
    workers: usize,
    inbox_cap: usize,
    burst: usize,
    /// Messages per task; length = task count.
    messages: Vec<u32>,
    /// Tasks whose handler sleeps a little, so activations span steals.
    slow: Vec<bool>,
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (
        1usize..5,
        1usize..6,
        1usize..6,
        proptest::collection::vec((1u32..40, any::<bool>()), 1..6),
    )
        .prop_map(|(workers, inbox_cap, burst, tasks)| Plan {
            workers,
            inbox_cap,
            burst,
            messages: tasks.iter().map(|(n, _)| *n).collect(),
            slow: tasks.iter().map(|(_, s)| *s).collect(),
        })
}

struct TaskProbe {
    log: Mutex<Vec<u32>>,
    /// Set while the handler runs; a second concurrent entry trips
    /// `overlap`.
    executing: AtomicBool,
    overlap: AtomicBool,
}

proptest! {
    /// FIFO + no-concurrent-execution + no loss, against the sequential
    /// oracle, under random stealing interleavings.
    #[test]
    fn scheduled_tasks_match_the_sequential_spec(plan in arb_plan()) {
        let sched: Scheduler<u32> = Scheduler::new(SchedulerOptions {
            workers: plan.workers,
            inbox_cap: plan.inbox_cap,
            burst: plan.burst,
            name: "props".to_string(),
            ..Default::default()
        });

        let mut probes = Vec::new();
        let mut senders = Vec::new();
        for (index, slow) in plan.slow.iter().enumerate() {
            let probe = Arc::new(TaskProbe {
                log: Mutex::new(Vec::new()),
                executing: AtomicBool::new(false),
                overlap: AtomicBool::new(false),
            });
            let handler_probe = Arc::clone(&probe);
            let slow = *slow;
            let tx = sched.spawn(&format!("task-{index}"), move |batch| {
                if handler_probe.executing.swap(true, Ordering::SeqCst) {
                    handler_probe.overlap.store(true, Ordering::SeqCst);
                }
                if slow {
                    std::thread::sleep(Duration::from_micros(200));
                }
                handler_probe
                    .log
                    .lock()
                    .unwrap()
                    .extend(batch.drain(..));
                handler_probe.executing.store(false, Ordering::SeqCst);
            });
            probes.push(probe);
            senders.push(tx);
        }

        // One producer thread per task: the send order per task is the
        // thread's program order, which is exactly what the spec
        // expects back. Concurrent producers + bounded inboxes +
        // multiple workers is where the interleavings come from.
        let producers: Vec<_> = plan
            .messages
            .iter()
            .zip(&senders)
            .map(|(&n, tx)| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for value in 0..n {
                        tx.send(value).expect("send during run");
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().expect("producer");
        }
        sched.shutdown();

        for (index, probe) in probes.iter().enumerate() {
            let sent: Vec<u32> = (0..plan.messages[index]).collect();
            let got = probe.log.lock().unwrap().clone();
            prop_assert_eq!(&got, &oracle(&sent), "task {} diverged", index);
            prop_assert!(
                !probe.overlap.load(Ordering::SeqCst),
                "task {} ran on two workers at once",
                index
            );
        }
        prop_assert!(sched.panics().is_empty());
    }

    /// A poisoned task never corrupts its neighbours: whichever task
    /// panics, every other task still matches the sequential spec, and
    /// the panic is reported exactly once.
    #[test]
    fn panic_isolation_under_stealing(
        plan in arb_plan(),
        poison_pick in 0usize..64,
    ) {
        let victim = poison_pick % plan.messages.len();
        let sched: Scheduler<u32> = Scheduler::new(SchedulerOptions {
            workers: plan.workers,
            inbox_cap: plan.inbox_cap,
            burst: plan.burst,
            name: "props-poison".to_string(),
            ..Default::default()
        });

        let mut logs = Vec::new();
        let mut senders = Vec::new();
        for index in 0..plan.messages.len() {
            let log = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&log);
            let poisoned = index == victim;
            let tx = sched.spawn(&format!("task-{index}"), move |batch| {
                if poisoned {
                    panic!("injected");
                }
                sink.lock().unwrap().extend(batch.drain(..));
            });
            logs.push(log);
            senders.push(tx);
        }

        let producers: Vec<_> = plan
            .messages
            .iter()
            .zip(&senders)
            .enumerate()
            .map(|(index, (&n, tx))| {
                let tx = tx.clone();
                let expect_ok = index != victim;
                std::thread::spawn(move || {
                    for value in 0..n {
                        // The victim's sends may fail once poisoned;
                        // everyone else's must succeed.
                        let result = tx.send(value);
                        if expect_ok {
                            result.expect("healthy task refused a send");
                        }
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().expect("producer");
        }
        sched.shutdown();

        for (index, log) in logs.iter().enumerate() {
            if index == victim {
                continue;
            }
            let sent: Vec<u32> = (0..plan.messages[index]).collect();
            prop_assert_eq!(&*log.lock().unwrap(), &oracle(&sent));
        }
        let panics = sched.panics();
        prop_assert_eq!(panics.len(), 1);
        prop_assert_eq!(&panics[0].task, &format!("task-{victim}"));
        prop_assert_eq!(&panics[0].message, &"injected".to_string());
    }
}

/// Races `shutdown()` against in-flight sends, repeatedly: every send
/// that returned `Ok` must be processed, even when its wakeup lands
/// after the workers have already scanned their queues for the last
/// time (the final sweep in `shutdown` covers that window).
#[test]
fn shutdown_never_loses_accepted_sends() {
    for round in 0..60 {
        let sched: Scheduler<u32> = Scheduler::new(SchedulerOptions {
            workers: 1 + round % 3,
            inbox_cap: 4,
            burst: 2,
            name: "props-race".to_string(),
            ..Default::default()
        });
        let processed = Arc::new(AtomicUsize::new(0));
        let senders: Vec<_> = (0..3)
            .map(|i| {
                let counter = Arc::clone(&processed);
                sched.spawn(&format!("t{i}"), move |batch| {
                    counter.fetch_add(batch.len(), Ordering::SeqCst);
                    batch.clear();
                })
            })
            .collect();
        let accepted = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = senders
            .iter()
            .map(|tx| {
                let tx = tx.clone();
                let accepted = Arc::clone(&accepted);
                std::thread::spawn(move || {
                    for v in 0..50u32 {
                        if tx.send(v).is_ok() {
                            accepted.fetch_add(1, Ordering::SeqCst);
                        } else {
                            break; // closed by the racing shutdown
                        }
                    }
                })
            })
            .collect();
        // Race the shutdown into the middle of the sends.
        std::thread::sleep(Duration::from_micros(50 * (round as u64 % 7)));
        sched.shutdown();
        for producer in producers {
            producer.join().expect("producer");
        }
        assert_eq!(
            processed.load(Ordering::SeqCst),
            accepted.load(Ordering::SeqCst),
            "round {round}: an accepted send was dropped by shutdown"
        );
    }
}

/// Deterministic scale check outside proptest: 2000 tasks on 3 workers,
/// every message accounted for — thread count stays 3 while task count
/// is three orders of magnitude larger.
#[test]
fn thousands_of_tasks_on_a_handful_of_workers() {
    let sched: Scheduler<u32> = Scheduler::new(SchedulerOptions {
        workers: 3,
        inbox_cap: 16,
        burst: 8,
        name: "props-scale".to_string(),
        ..Default::default()
    });
    let total = Arc::new(AtomicUsize::new(0));
    let senders: Vec<_> = (0..2000)
        .map(|index| {
            let counter = Arc::clone(&total);
            sched.spawn(&format!("unit-{index}"), move |batch| {
                counter.fetch_add(batch.len(), Ordering::SeqCst);
                batch.clear();
            })
        })
        .collect();
    assert_eq!(sched.workers(), 3);
    for (index, tx) in senders.iter().enumerate() {
        for value in 0..3 {
            tx.send(index as u32 + value).unwrap();
        }
    }
    sched.shutdown();
    assert_eq!(total.load(Ordering::SeqCst), 2000 * 3);
}
