//! Sinatra-style routing: method + path patterns with `:param` captures.

use std::collections::BTreeMap;

use safeweb_http::Method;

/// A parsed route pattern, e.g. `/records/:mid/details`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePattern {
    segments: Vec<Segment>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Literal(String),
    Param(String),
    /// `*` — matches the rest of the path (including `/`).
    Splat,
}

impl RoutePattern {
    /// Parses a pattern. Segments starting with `:` capture one path
    /// segment; a final `*` captures the rest as `splat`.
    pub fn parse(pattern: &str) -> RoutePattern {
        let segments = pattern
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix(':') {
                    Segment::Param(name.to_string())
                } else if s == "*" {
                    Segment::Splat
                } else {
                    Segment::Literal(s.to_string())
                }
            })
            .collect();
        RoutePattern { segments }
    }

    /// Attempts to match a concrete path, returning captured parameters.
    pub fn matches(&self, path: &str) -> Option<BTreeMap<String, String>> {
        let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let mut params = BTreeMap::new();
        let mut i = 0;
        for seg in &self.segments {
            match seg {
                Segment::Literal(lit) => {
                    if parts.get(i) != Some(&lit.as_str()) {
                        return None;
                    }
                    i += 1;
                }
                Segment::Param(name) => {
                    let part = parts.get(i)?;
                    params.insert(name.clone(), safeweb_http::url_decode(part));
                    i += 1;
                }
                Segment::Splat => {
                    params.insert("splat".to_string(), parts[i..].join("/"));
                    i = parts.len();
                }
            }
        }
        if i == parts.len() {
            Some(params)
        } else {
            None
        }
    }
}

/// A routing table mapping `(method, pattern)` to handler indices; the
/// application stores the handlers themselves.
#[derive(Debug, Default)]
pub struct Router {
    routes: Vec<(Method, RoutePattern, usize)>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers a route pointing at `handler_index`.
    pub fn add(&mut self, method: Method, pattern: &str, handler_index: usize) {
        self.routes
            .push((method, RoutePattern::parse(pattern), handler_index));
    }

    /// Finds the first matching route (registration order, like Sinatra).
    pub fn route(&self, method: Method, path: &str) -> Option<(usize, BTreeMap<String, String>)> {
        for (m, pattern, idx) in &self.routes {
            if *m != method {
                continue;
            }
            if let Some(params) = pattern.matches(path) {
                return Some((*idx, params));
            }
        }
        None
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_routes() {
        let p = RoutePattern::parse("/records/all");
        assert!(p.matches("/records/all").is_some());
        assert!(p.matches("/records").is_none());
        assert!(p.matches("/records/all/more").is_none());
        // Trailing slash tolerated.
        assert!(p.matches("/records/all/").is_some());
    }

    #[test]
    fn param_capture() {
        let p = RoutePattern::parse("/records/:mid");
        let params = p.matches("/records/addenbrookes").unwrap();
        assert_eq!(params.get("mid").map(String::as_str), Some("addenbrookes"));
        assert!(p.matches("/records").is_none());
    }

    #[test]
    fn multiple_params() {
        let p = RoutePattern::parse("/mdt/:mid/patient/:pid");
        let params = p.matches("/mdt/a/patient/42").unwrap();
        assert_eq!(params.get("mid").map(String::as_str), Some("a"));
        assert_eq!(params.get("pid").map(String::as_str), Some("42"));
    }

    #[test]
    fn params_are_url_decoded() {
        let p = RoutePattern::parse("/records/:mid");
        let params = p.matches("/records/st+mary%27s").unwrap();
        assert_eq!(params.get("mid").map(String::as_str), Some("st mary's"));
    }

    #[test]
    fn splat_captures_rest() {
        let p = RoutePattern::parse("/static/*");
        let params = p.matches("/static/css/site.css").unwrap();
        assert_eq!(
            params.get("splat").map(String::as_str),
            Some("css/site.css")
        );
    }

    #[test]
    fn router_first_match_wins() {
        let mut r = Router::new();
        r.add(Method::Get, "/records/special", 0);
        r.add(Method::Get, "/records/:mid", 1);
        assert_eq!(r.route(Method::Get, "/records/special").unwrap().0, 0);
        assert_eq!(r.route(Method::Get, "/records/other").unwrap().0, 1);
        assert!(r.route(Method::Post, "/records/other").is_none());
        assert!(r.route(Method::Get, "/nowhere").is_none());
    }
}
