//! An ERB-like template engine with taint propagation.
//!
//! The paper's frontend renders pages with ERB; label propagation through
//! template rendering is part of the measured overhead (Figure 5's
//! "template rendering 63 ms + label propagation 17 ms"). This engine
//! supports the subset the MDT portal needs:
//!
//! ```text
//! <h1>MDT <%= mdt_name %></h1>
//! <% for p in patients %>
//!   <tr><td><%= p.name %></td><td><%= p.age %></td></tr>
//! <% end %>
//! <% if is_admin %> <a href="/admin">admin</a> <% end %>
//! ```
//!
//! Interpolated values are labelled strings; the rendered page carries the
//! union of all interpolated labels. Values still marked user-tainted are
//! HTML-escaped automatically on interpolation (SafeWeb's XSS safety net).

use std::collections::BTreeMap;
use std::fmt;

use safeweb_taint::SStr;

/// A value bindable in a template context.
#[derive(Debug, Clone)]
pub enum TValue {
    /// A labelled string, rendered by `<%= name %>`.
    Str(SStr),
    /// A list of sub-contexts, iterated by `<% for x in name %>`.
    List(Vec<TContext>),
    /// A boolean, tested by `<% if name %>`.
    Bool(bool),
}

impl From<SStr> for TValue {
    fn from(s: SStr) -> TValue {
        TValue::Str(s)
    }
}

impl From<&str> for TValue {
    fn from(s: &str) -> TValue {
        TValue::Str(SStr::public(s))
    }
}

impl From<bool> for TValue {
    fn from(b: bool) -> TValue {
        TValue::Bool(b)
    }
}

/// A template rendering context: named bindings.
#[derive(Debug, Clone, Default)]
pub struct TContext {
    vars: BTreeMap<String, TValue>,
}

impl TContext {
    /// An empty context.
    pub fn new() -> TContext {
        TContext::default()
    }

    /// Binds a value (builder style).
    pub fn bind(mut self, name: &str, value: impl Into<TValue>) -> TContext {
        self.vars.insert(name.to_string(), value.into());
        self
    }

    /// Binds a value in place.
    pub fn set(&mut self, name: &str, value: impl Into<TValue>) {
        self.vars.insert(name.to_string(), value.into());
    }

    /// Looks up a dotted path (`p.name` = field `name` of binding `p`,
    /// where `p` must be a single-entry context bound by a `for` loop).
    fn lookup(&self, path: &str) -> Option<&TValue> {
        let mut parts = path.split('.');
        let first = parts.next()?;
        let mut current = self.vars.get(first)?;
        for part in parts {
            match current {
                TValue::List(items) if items.len() == 1 => {
                    current = items[0].vars.get(part)?;
                }
                _ => return None,
            }
        }
        Some(current)
    }
}

/// Error raised when a template fails to parse or render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateError {
    message: String,
}

impl TemplateError {
    fn new(message: impl Into<String>) -> TemplateError {
        TemplateError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "template error: {}", self.message)
    }
}

impl std::error::Error for TemplateError {}

/// A parsed template.
#[derive(Debug, Clone)]
pub struct Template {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Literal(String),
    /// `<%= path %>` — interpolate, auto-escaping user-tainted values.
    Interp(String),
    /// `<%= raw path %>` — interpolate without escaping (trusted HTML).
    InterpRaw(String),
    /// `<% for var in list %> body <% end %>`
    For {
        var: String,
        list: String,
        body: Vec<Node>,
    },
    /// `<% if cond %> body <% end %>`
    If {
        cond: String,
        body: Vec<Node>,
    },
}

impl Template {
    /// Parses template source.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError`] for unterminated tags, unknown directives
    /// or unbalanced `for`/`if`/`end`.
    pub fn parse(source: &str) -> Result<Template, TemplateError> {
        let tokens = lex(source)?;
        let mut pos = 0;
        let nodes = parse_nodes(&tokens, &mut pos, false)?;
        if pos != tokens.len() {
            return Err(TemplateError::new("unexpected <% end %>"));
        }
        Ok(Template { nodes })
    }

    /// Renders with the given context, producing a labelled string that
    /// carries the union of every interpolated value's labels.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError`] for unbound variables or type mismatches
    /// (e.g. `for` over a non-list).
    pub fn render(&self, ctx: &TContext) -> Result<SStr, TemplateError> {
        let mut out = SStr::public("");
        let mut scope = Vec::new();
        render_nodes(&self.nodes, ctx, &mut scope, &mut out)?;
        Ok(out)
    }
}

/// Loop-variable bindings, innermost last. Kept separate from the root
/// context so iterating a 1000-row list does not clone the context per
/// row.
type Scope<'a> = Vec<(String, &'a TContext)>;

/// What a scoped lookup can resolve to: an ordinary value, or a loop
/// variable's bound row.
enum ScopedValue<'a> {
    Value(&'a TValue),
    /// A bare loop variable; truthy in `if`, an error elsewhere.
    Item,
}

fn lookup_scoped<'a>(ctx: &'a TContext, scope: &Scope<'a>, path: &str) -> Option<ScopedValue<'a>> {
    let (first, rest) = match path.split_once('.') {
        Some((f, r)) => (f, Some(r)),
        None => (path, None),
    };
    // Innermost loop variables shadow outer ones and the root context.
    for (name, item) in scope.iter().rev() {
        if name == first {
            return match rest {
                None => Some(ScopedValue::Item),
                Some(rest) => item.lookup(rest).map(ScopedValue::Value),
            };
        }
    }
    ctx.lookup(path).map(ScopedValue::Value)
}

enum Token {
    Literal(String),
    Tag(String), // the inside of <% ... %> (with = prefix retained)
}

fn lex(source: &str) -> Result<Vec<Token>, TemplateError> {
    let mut tokens = Vec::new();
    let mut rest = source;
    while let Some(start) = rest.find("<%") {
        if start > 0 {
            tokens.push(Token::Literal(rest[..start].to_string()));
        }
        let after = &rest[start + 2..];
        let end = after
            .find("%>")
            .ok_or_else(|| TemplateError::new("unterminated <% tag"))?;
        tokens.push(Token::Tag(after[..end].trim().to_string()));
        rest = &after[end + 2..];
    }
    if !rest.is_empty() {
        tokens.push(Token::Literal(rest.to_string()));
    }
    Ok(tokens)
}

fn parse_nodes(
    tokens: &[Token],
    pos: &mut usize,
    in_block: bool,
) -> Result<Vec<Node>, TemplateError> {
    let mut nodes = Vec::new();
    while *pos < tokens.len() {
        match &tokens[*pos] {
            Token::Literal(s) => {
                nodes.push(Node::Literal(s.clone()));
                *pos += 1;
            }
            Token::Tag(tag) => {
                if tag == "end" {
                    if in_block {
                        return Ok(nodes); // caller consumes the `end`
                    }
                    return Err(TemplateError::new("<% end %> without open block"));
                } else if let Some(expr) = tag.strip_prefix('=') {
                    let expr = expr.trim();
                    *pos += 1;
                    if let Some(path) = expr.strip_prefix("raw ") {
                        nodes.push(Node::InterpRaw(path.trim().to_string()));
                    } else {
                        nodes.push(Node::Interp(expr.to_string()));
                    }
                } else if let Some(rest) = tag.strip_prefix("for ") {
                    let (var, list) = rest
                        .split_once(" in ")
                        .ok_or_else(|| TemplateError::new("for requires `for x in list`"))?;
                    *pos += 1;
                    let body = parse_nodes(tokens, pos, true)?;
                    expect_end(tokens, pos)?;
                    nodes.push(Node::For {
                        var: var.trim().to_string(),
                        list: list.trim().to_string(),
                        body,
                    });
                } else if let Some(cond) = tag.strip_prefix("if ") {
                    *pos += 1;
                    let body = parse_nodes(tokens, pos, true)?;
                    expect_end(tokens, pos)?;
                    nodes.push(Node::If {
                        cond: cond.trim().to_string(),
                        body,
                    });
                } else {
                    return Err(TemplateError::new(format!("unknown directive {tag:?}")));
                }
            }
        }
    }
    if in_block {
        return Err(TemplateError::new("missing <% end %>"));
    }
    Ok(nodes)
}

fn expect_end(tokens: &[Token], pos: &mut usize) -> Result<(), TemplateError> {
    match tokens.get(*pos) {
        Some(Token::Tag(t)) if t == "end" => {
            *pos += 1;
            Ok(())
        }
        _ => Err(TemplateError::new("missing <% end %>")),
    }
}

fn render_nodes<'a>(
    nodes: &[Node],
    ctx: &'a TContext,
    scope: &mut Scope<'a>,
    out: &mut SStr,
) -> Result<(), TemplateError> {
    for node in nodes {
        match node {
            Node::Literal(s) => out.push_str(s),
            Node::Interp(path) | Node::InterpRaw(path) => {
                let value = lookup_scoped(ctx, scope, path)
                    .ok_or_else(|| TemplateError::new(format!("unbound variable {path:?}")))?;
                let s = match value {
                    ScopedValue::Value(TValue::Str(s)) => s.clone(),
                    ScopedValue::Value(TValue::Bool(b)) => {
                        SStr::public(if *b { "true" } else { "false" })
                    }
                    ScopedValue::Value(TValue::List(_)) | ScopedValue::Item => {
                        return Err(TemplateError::new(format!(
                            "cannot interpolate list {path:?}"
                        )))
                    }
                };
                // SafeWeb's XSS safety net: user-tainted data is escaped on
                // interpolation even in `raw` mode.
                let s = if s.is_user_tainted() || matches!(node, Node::Interp(_)) {
                    s.sanitize_html()
                } else {
                    s
                };
                out.push_sstr(&s);
            }
            Node::For { var, list, body } => {
                let value = lookup_scoped(ctx, scope, list)
                    .ok_or_else(|| TemplateError::new(format!("unbound list {list:?}")))?;
                let ScopedValue::Value(TValue::List(items)) = value else {
                    return Err(TemplateError::new(format!("{list:?} is not a list")));
                };
                for item in items {
                    scope.push((var.clone(), item));
                    let result = render_nodes(body, ctx, scope, out);
                    scope.pop();
                    result?;
                }
            }
            Node::If { cond, body } => {
                let value = lookup_scoped(ctx, scope, cond)
                    .ok_or_else(|| TemplateError::new(format!("unbound condition {cond:?}")))?;
                let truthy = match value {
                    ScopedValue::Value(TValue::Bool(b)) => *b,
                    ScopedValue::Value(TValue::Str(s)) => !s.is_empty(),
                    ScopedValue::Value(TValue::List(items)) => !items.is_empty(),
                    ScopedValue::Item => true,
                };
                if truthy {
                    render_nodes(body, ctx, scope, out)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_labels::Label;

    fn patient_label() -> Label {
        Label::conf("e", "patient/1")
    }

    #[test]
    fn interpolation_carries_labels() {
        let t = Template::parse("<h1><%= name %></h1>").unwrap();
        let ctx = TContext::new().bind("name", SStr::labelled("Ann", [patient_label()]));
        let out = t.render(&ctx).unwrap();
        assert_eq!(out.as_str(), "<h1>Ann</h1>");
        assert!(out.labels().contains(&patient_label()));
    }

    #[test]
    fn for_loop_renders_items_and_unions_labels() {
        let t = Template::parse("<% for p in patients %><td><%= p.name %></td><% end %>").unwrap();
        let patients = TValue::List(vec![
            TContext::new().bind("name", SStr::labelled("Ann", [Label::conf("e", "p/1")])),
            TContext::new().bind("name", SStr::labelled("Bob", [Label::conf("e", "p/2")])),
        ]);
        let ctx = TContext::new().bind("patients", patients);
        let out = t.render(&ctx).unwrap();
        assert_eq!(out.as_str(), "<td>Ann</td><td>Bob</td>");
        assert!(out.labels().contains(&Label::conf("e", "p/1")));
        assert!(out.labels().contains(&Label::conf("e", "p/2")));
    }

    #[test]
    fn if_blocks() {
        let t = Template::parse("<% if admin %>secret<% end %>ok").unwrap();
        let shown = t.render(&TContext::new().bind("admin", true)).unwrap();
        assert_eq!(shown.as_str(), "secretok");
        let hidden = t.render(&TContext::new().bind("admin", false)).unwrap();
        assert_eq!(hidden.as_str(), "ok");
    }

    #[test]
    fn interp_escapes_html() {
        let t = Template::parse("<%= v %>").unwrap();
        let out = t
            .render(&TContext::new().bind("v", SStr::public("<b>&")))
            .unwrap();
        assert_eq!(out.as_str(), "&lt;b&gt;&amp;");
        // raw mode keeps trusted HTML.
        let t = Template::parse("<%= raw v %>").unwrap();
        let out = t
            .render(&TContext::new().bind("v", SStr::public("<b>&")))
            .unwrap();
        assert_eq!(out.as_str(), "<b>&");
    }

    #[test]
    fn user_taint_is_escaped_even_in_raw_mode() {
        let t = Template::parse("<%= raw v %>").unwrap();
        let out = t
            .render(&TContext::new().bind("v", SStr::from_user("<script>x</script>")))
            .unwrap();
        assert!(out.as_str().contains("&lt;script&gt;"));
        assert!(!out.is_user_tainted());
    }

    #[test]
    fn errors_on_unbound_and_malformed() {
        assert!(Template::parse("<% bogus %>").is_err());
        assert!(Template::parse("<% for x %>").is_err());
        assert!(Template::parse("<% if x %>no end").is_err());
        assert!(Template::parse("<% end %>").is_err());
        assert!(Template::parse("<%= x").is_err());

        let t = Template::parse("<%= missing %>").unwrap();
        assert!(t.render(&TContext::new()).is_err());
        let t = Template::parse("<% for x in notlist %><% end %>").unwrap();
        assert!(t
            .render(&TContext::new().bind("notlist", SStr::public("s")))
            .is_err());
    }

    #[test]
    fn nested_loops() {
        let t = Template::parse(
            "<% for m in mdts %>[<%= m.name %>:<% for p in m.patients %><%= p.id %>,<% end %>]<% end %>",
        )
        .unwrap();
        let ctx = TContext::new().bind(
            "mdts",
            TValue::List(vec![TContext::new().bind("name", SStr::public("a")).bind(
                "patients",
                TValue::List(vec![
                    TContext::new().bind("id", SStr::public("1")),
                    TContext::new().bind("id", SStr::public("2")),
                ]),
            )]),
        );
        let out = t.render(&ctx).unwrap();
        assert_eq!(out.as_str(), "[a:1,2,]");
    }
}
