//! The per-clearance rendered-view cache.
//!
//! Labels as cache keys instead of just checks: once privilege sets are
//! interned (one [`PrivilegeSetId`] per distinct clearance), "may this user
//! see this page" is a pure function of `(route, path, clearance id,
//! database version)` — so every user with an *equal* privilege set can
//! share one rendered, label-checked page. This is the payoff the
//! faceted-value systems (Jeeves/Jacqueline, LWeb) get from making policy
//! part of the data identity.
//!
//! ## Safety contract
//!
//! Only responses that already **passed** the boundary label check are
//! inserted, keyed by the *exact* privilege-set id of the user they were
//! checked for. A lookup for a different clearance — however similar — is a
//! different key, so the cache can never serve bytes across unequal
//! clearances; equal ids mean equal privilege sets by construction of the
//! hash-cons table. Staleness is handled by tagging entries with the
//! document store's change sequence and comparing it on every hit.
//!
//! Routes must opt in (see `SafeWebApp::get_cached`) and promise that their
//! output depends only on the request path/query, the user's privileges and
//! the document store — not on the username or other per-user state.

use std::collections::HashMap;
use std::sync::Mutex;

use safeweb_labels::PrivilegeSetId;

/// Cache key: one rendered page per (route, concrete path+query, clearance).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PageKey {
    route: usize,
    path_query: String,
    clearance: u32,
}

/// A rendered, released page plus the store version it was rendered from.
#[derive(Debug, Clone)]
struct CachedPage {
    seq: u64,
    status: u16,
    content_type: String,
    body: String,
}

/// A rendered page served from (or inserted into) the cache.
#[derive(Debug, Clone)]
pub(crate) struct RenderedPage {
    /// HTTP status (only 200s are cached).
    pub status: u16,
    /// Content type of the released body.
    pub content_type: String,
    /// The released (label-checked) body bytes.
    pub body: String,
}

const SHARDS: usize = 16;
/// Per-shard entry bound; on overflow the shard is cleared. With 16 shards
/// this caps the cache at ~16k pages.
const SHARD_CAP: usize = 1024;

/// Sharded, bounded map from [`PageKey`] to [`CachedPage`].
#[derive(Debug, Default)]
pub(crate) struct RenderCache {
    shards: [Mutex<HashMap<PageKey, CachedPage>>; SHARDS],
}

impl RenderCache {
    pub(crate) fn new() -> RenderCache {
        RenderCache::default()
    }

    fn shard(&self, key: &PageKey) -> &Mutex<HashMap<PageKey, CachedPage>> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// Looks up a page rendered for exactly this clearance at exactly this
    /// store version.
    pub(crate) fn get(
        &self,
        route: usize,
        path_query: &str,
        clearance: PrivilegeSetId,
        seq: u64,
    ) -> Option<RenderedPage> {
        let key = PageKey {
            route,
            path_query: path_query.to_string(),
            clearance: clearance.as_u32(),
        };
        let shard = self.shard(&key).lock().expect("render cache poisoned");
        match shard.get(&key) {
            Some(page) if page.seq == seq => Some(RenderedPage {
                status: page.status,
                content_type: page.content_type.clone(),
                body: page.body.clone(),
            }),
            _ => None,
        }
    }

    /// Inserts a released page for this clearance, tagged with the store
    /// version read *before* the handler ran (if the store advanced while
    /// rendering, the entry is immediately stale — the safe direction).
    pub(crate) fn put(
        &self,
        route: usize,
        path_query: &str,
        clearance: PrivilegeSetId,
        seq: u64,
        page: &RenderedPage,
    ) {
        let key = PageKey {
            route,
            path_query: path_query.to_string(),
            clearance: clearance.as_u32(),
        };
        let mut shard = self.shard(&key).lock().expect("render cache poisoned");
        if shard.len() >= SHARD_CAP {
            shard.clear();
        }
        shard.insert(
            key,
            CachedPage {
                seq,
                status: page.status,
                content_type: page.content_type.clone(),
                body: page.body.clone(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_labels::{Label, Privilege, PrivilegeSet};

    fn clearance(path: &str) -> PrivilegeSetId {
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::clearance(Label::conf("cache.test", path)));
        privs.id()
    }

    fn page(body: &str) -> RenderedPage {
        RenderedPage {
            status: 200,
            content_type: "text/html".to_string(),
            body: body.to_string(),
        }
    }

    #[test]
    fn hit_requires_equal_clearance_and_seq() {
        let cache = RenderCache::new();
        let a = clearance("mdt/a");
        let b = clearance("mdt/b");
        cache.put(0, "/view", a, 7, &page("secret-of-a"));

        let hit = cache.get(0, "/view", a, 7).expect("same clearance hits");
        assert_eq!(hit.body, "secret-of-a");

        assert!(
            cache.get(0, "/view", b, 7).is_none(),
            "unequal clearance must never see the cached page"
        );
        assert!(cache.get(0, "/view", a, 8).is_none(), "stale seq misses");
        assert!(cache.get(1, "/view", a, 7).is_none(), "other route misses");
        assert!(cache.get(0, "/other", a, 7).is_none(), "other path misses");
    }

    #[test]
    fn overflow_clears_rather_than_grows() {
        let cache = RenderCache::new();
        let c = clearance("mdt/x");
        for i in 0..(SHARD_CAP * SHARDS * 2) {
            cache.put(0, &format!("/p/{i}"), c, 1, &page("x"));
        }
        let total: usize = cache.shards.iter().map(|s| s.lock().unwrap().len()).sum();
        assert!(total <= SHARD_CAP * SHARDS);
    }
}
