//! Authentication against the web database (§4.4 step 1, §5.1: "user
//! accounts and their label privileges are stored in the web database").
//!
//! Password verification uses a deliberately expensive iterated hash; HTTP
//! basic authentication re-verifies on every request, which is why auth
//! dominates the paper's frontend latency breakdown (87 ms of 180 ms,
//! Figure 5). The iteration count is configurable so the benchmark harness
//! can calibrate the same profile.

use safeweb_labels::{Privilege, PrivilegeSet};
use safeweb_relstore::{CellValue, ColumnDef, ColumnType, Database, Schema};

/// Authentication configuration.
#[derive(Debug, Clone, Copy)]
pub struct AuthConfig {
    /// Iterations of the password hash. Higher = slower = more resistant
    /// to brute force. The default is calibrated to take on the order of
    /// tens of milliseconds, mirroring the paper's profile.
    pub hash_iterations: u32,
}

impl Default for AuthConfig {
    fn default() -> AuthConfig {
        AuthConfig {
            hash_iterations: 2_000_000,
        }
    }
}

/// The user/privilege store backed by the web database.
#[derive(Debug, Clone)]
pub struct UserStore {
    db: Database,
    config: AuthConfig,
}

/// An authenticated user: name plus the privileges fetched from the web
/// database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthenticatedUser {
    /// The username.
    pub username: String,
    /// The user's label privileges.
    pub privileges: PrivilegeSet,
    /// Whether the user is an application administrator (used by the MDT
    /// portal's privilege-assignment pages, which are part of the audited
    /// codebase).
    pub is_admin: bool,
}

impl UserStore {
    /// Creates the user tables in `db` (idempotent) and returns the store.
    pub fn new(db: Database, config: AuthConfig) -> UserStore {
        // Ignore TableExists: the schema is fixed.
        let _ = db.create_table(
            "users",
            Schema::new(
                vec![
                    ColumnDef::new("username", ColumnType::Text),
                    ColumnDef::new("password_hash", ColumnType::Text),
                    ColumnDef::new("privileges", ColumnType::Text),
                    ColumnDef::new("is_admin", ColumnType::Bool),
                ],
                "username",
            ),
        );
        UserStore { db, config }
    }

    /// The underlying web database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Creates a user with the given password and privileges.
    ///
    /// # Errors
    ///
    /// Returns an error string for duplicate usernames or storage failures.
    pub fn create_user(
        &self,
        username: &str,
        password: &str,
        privileges: &PrivilegeSet,
        is_admin: bool,
    ) -> Result<(), String> {
        let hash = hash_password(username, password, self.config.hash_iterations);
        let wire = privileges_to_wire(privileges);
        self.db
            .insert(
                "users",
                vec![username.into(), hash.into(), wire.into(), is_admin.into()],
            )
            .map_err(|e| e.to_string())
    }

    /// Grants an additional privilege to an existing user (the audited
    /// privilege-assignment path of the MDT portal, §5.2).
    ///
    /// # Errors
    ///
    /// Returns an error string if the user does not exist.
    pub fn grant_privilege(&self, username: &str, privilege: Privilege) -> Result<(), String> {
        let row = self
            .db
            .get("users", &CellValue::from(username))
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("no such user {username:?}"))?;
        let mut privs = wire_to_privileges(row.text("privileges").unwrap_or(""));
        privs.grant(privilege);
        self.db
            .update(
                "users",
                vec![
                    username.into(),
                    row.text("password_hash").unwrap_or("").into(),
                    privileges_to_wire(&privs).into(),
                    row.bool("is_admin").unwrap_or(false).into(),
                ],
            )
            .map_err(|e| e.to_string())
    }

    /// Verifies credentials (slow by design) and fetches privileges.
    /// Returns `None` on unknown user or wrong password.
    ///
    /// The `lookup` closure gives the §5.2 "errors in access checks"
    /// experiment a hook to inject a case-insensitive username bug; the
    /// production path is [`UserStore::authenticate`].
    pub fn authenticate_with_lookup(
        &self,
        username: &str,
        password: &str,
        lookup: impl Fn(&Database, &str) -> Option<safeweb_relstore::Row>,
    ) -> Option<AuthenticatedUser> {
        let row = lookup(&self.db, username)?;
        let stored_name = row.text("username")?.to_string();
        let expected = row.text("password_hash")?;
        // NOTE: hash is salted with the *stored* username.
        let got = hash_password(&stored_name, password, self.config.hash_iterations);
        if !constant_time_eq(expected.as_bytes(), got.as_bytes()) {
            return None;
        }
        Some(AuthenticatedUser {
            username: stored_name,
            privileges: wire_to_privileges(row.text("privileges").unwrap_or("")),
            is_admin: row.bool("is_admin").unwrap_or(false),
        })
    }

    /// Verifies credentials with the standard exact-match lookup.
    pub fn authenticate(&self, username: &str, password: &str) -> Option<AuthenticatedUser> {
        self.authenticate_with_lookup(username, password, |db, name| {
            db.get("users", &CellValue::from(name)).ok().flatten()
        })
    }

    /// Verifies a password against an already-fetched `users` row (the
    /// frontend middleware fetches and verifies in separate, separately
    /// timed phases — privilege fetching vs. authentication in Figure 5).
    pub fn verify_row(
        &self,
        row: &safeweb_relstore::Row,
        password: &str,
    ) -> Option<AuthenticatedUser> {
        let stored_name = row.text("username")?.to_string();
        let expected = row.text("password_hash")?;
        let got = hash_password(&stored_name, password, self.config.hash_iterations);
        if !constant_time_eq(expected.as_bytes(), got.as_bytes()) {
            return None;
        }
        Some(AuthenticatedUser {
            username: stored_name,
            privileges: wire_to_privileges(row.text("privileges").unwrap_or("")),
            is_admin: row.bool("is_admin").unwrap_or(false),
        })
    }
}

/// Serialises privileges for storage (`kind pattern` per line).
pub fn privileges_to_wire(privileges: &PrivilegeSet) -> String {
    privileges
        .iter()
        .map(|p| format!("{} {}", p.kind().keyword(), p.pattern()))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Parses stored privileges; malformed lines are dropped (fail-closed:
/// damage to the privileges column can only *reduce* access).
pub fn wire_to_privileges(wire: &str) -> PrivilegeSet {
    let mut set = PrivilegeSet::new();
    for line in wire.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((kind, pattern)) = line.split_once(' ') else {
            continue;
        };
        let (Ok(kind), Ok(pattern)) = (kind.parse(), pattern.trim().parse()) else {
            continue;
        };
        set.grant(Privilege::new(kind, pattern));
    }
    set
}

/// Iterated salted hash. Deliberately sequential (each round feeds the
/// next) so it cannot be vectorised away; FNV-based because the dependency
/// allow-list has no cryptographic hash. The *shape* (slow KDF-style
/// verification dominating request latency) is what the evaluation needs —
/// a production deployment would swap in bcrypt/argon2.
pub fn hash_password(username: &str, password: &str, iterations: u32) -> String {
    let mut state: u64 = 0xcbf29ce484222325;
    let salt = format!("safeweb${username}$");
    for b in salt.bytes().chain(password.bytes()) {
        state ^= b as u64;
        state = state.wrapping_mul(0x100000001b3);
    }
    for i in 0..iterations {
        state ^= i as u64;
        state = state.wrapping_mul(0x100000001b3);
        state = state.rotate_left(17);
    }
    format!("{state:016x}")
}

fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_labels::Label;

    fn store() -> UserStore {
        UserStore::new(
            Database::new("web"),
            AuthConfig {
                hash_iterations: 1000, // fast for tests
            },
        )
    }

    fn mdt_privs(name: &str) -> PrivilegeSet {
        let mut p = PrivilegeSet::new();
        p.grant(Privilege::clearance(Label::conf(
            "ecric.org.uk",
            &format!("mdt/{name}"),
        )));
        p
    }

    #[test]
    fn create_and_authenticate() {
        let store = store();
        store
            .create_user("mdt1", "secret", &mdt_privs("one"), false)
            .unwrap();
        let user = store.authenticate("mdt1", "secret").unwrap();
        assert_eq!(user.username, "mdt1");
        assert!(user
            .privileges
            .has_clearance(&Label::conf("ecric.org.uk", "mdt/one")));
        assert!(!user.is_admin);

        assert!(store.authenticate("mdt1", "wrong").is_none());
        assert!(store.authenticate("nobody", "secret").is_none());
    }

    #[test]
    fn duplicate_user_rejected() {
        let store = store();
        store
            .create_user("u", "p", &PrivilegeSet::new(), false)
            .unwrap();
        assert!(store
            .create_user("u", "p", &PrivilegeSet::new(), false)
            .is_err());
    }

    #[test]
    fn usernames_are_case_sensitive() {
        // The §5.2 "errors in access checks" study hinges on mdt1 vs MDT1
        // being distinct principals.
        let store = store();
        store
            .create_user("mdt1", "a", &mdt_privs("one"), false)
            .unwrap();
        store
            .create_user("MDT1", "b", &mdt_privs("two"), false)
            .unwrap();
        let lower = store.authenticate("mdt1", "a").unwrap();
        let upper = store.authenticate("MDT1", "b").unwrap();
        assert_ne!(lower.privileges, upper.privileges);
        assert!(store.authenticate("MDT1", "a").is_none());
    }

    #[test]
    fn grant_privilege_extends_user() {
        let store = store();
        store
            .create_user("u", "p", &PrivilegeSet::new(), false)
            .unwrap();
        store
            .grant_privilege("u", Privilege::clearance(Label::conf("e", "x")))
            .unwrap();
        let user = store.authenticate("u", "p").unwrap();
        assert!(user.privileges.has_clearance(&Label::conf("e", "x")));
        assert!(store
            .grant_privilege("ghost", Privilege::clearance(Label::conf("e", "x")))
            .is_err());
    }

    #[test]
    fn privilege_wire_roundtrip() {
        let privs = mdt_privs("one");
        let wire = privileges_to_wire(&privs);
        assert_eq!(wire_to_privileges(&wire), privs);
        // Garbage lines are dropped, not granted.
        assert!(wire_to_privileges("nonsense\nclearance not-a-label").is_empty());
    }

    #[test]
    fn hash_depends_on_all_inputs() {
        let a = hash_password("u", "p", 1000);
        assert_ne!(a, hash_password("u", "q", 1000));
        assert_ne!(a, hash_password("v", "p", 1000));
        assert_ne!(a, hash_password("u", "p", 1001));
        assert_eq!(a, hash_password("u", "p", 1000));
    }
}
