//! The SafeWeb web frontend (§4.4, Figure 3): a Sinatra-like application
//! wrapper that authenticates every request, fetches the user's privileges
//! from the web database, runs the route handler over labelled data, and
//! **checks the response's labels against the user's privileges before
//! anything leaves the server**.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use safeweb_docstore::DocStore;
use safeweb_http::{Method, Request, Response};
use safeweb_labels::PrivilegeSet;
use safeweb_obs::{record_span, trace_scope, Counter, Histogram, MetricsRegistry, TraceId};
use safeweb_relstore::{CellValue, Database, Row};
use safeweb_taint::{SStr, SValue};

use crate::auth::{AuthenticatedUser, UserStore};
use crate::render_cache::{RenderCache, RenderedPage};
use crate::router::Router;

/// A labelled response produced by a route handler.
#[derive(Debug, Clone)]
pub struct SResponse {
    status: u16,
    content_type: String,
    body: SStr,
}

impl SResponse {
    /// 200 text/html.
    pub fn html(body: SStr) -> SResponse {
        SResponse {
            status: 200,
            content_type: "text/html; charset=utf-8".to_string(),
            body,
        }
    }

    /// 200 application/json.
    pub fn json(body: SStr) -> SResponse {
        SResponse {
            status: 200,
            content_type: "application/json".to_string(),
            body,
        }
    }

    /// 200 text/plain.
    pub fn text(body: SStr) -> SResponse {
        SResponse {
            status: 200,
            content_type: "text/plain; charset=utf-8".to_string(),
            body,
        }
    }

    /// A public (unlabelled) error page with the given status.
    pub fn error(status: u16, message: &str) -> SResponse {
        SResponse {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: SStr::public(message),
        }
    }

    /// 404.
    pub fn not_found() -> SResponse {
        SResponse::error(404, "not found")
    }

    /// Overrides the status code.
    pub fn with_status(mut self, status: u16) -> SResponse {
        self.status = status;
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The labelled body.
    pub fn body(&self) -> &SStr {
        &self.body
    }
}

/// Request context handed to route handlers.
pub struct Ctx<'a> {
    request: &'a Request,
    params: BTreeMap<String, String>,
    user: &'a AuthenticatedUser,
    records: &'a DocStore,
}

impl<'a> Ctx<'a> {
    /// The raw HTTP request.
    pub fn request(&self) -> &Request {
        self.request
    }

    /// A path parameter as a **user-tainted** labelled string: route
    /// parameters are user input and must be sanitised before echoing.
    pub fn param(&self, name: &str) -> Option<SStr> {
        self.params.get(name).map(|v| SStr::from_user(v.clone()))
    }

    /// A path parameter as a plain string, for use as a lookup key.
    pub fn param_raw(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }

    /// A query parameter as a user-tainted labelled string.
    pub fn query(&self, name: &str) -> Option<SStr> {
        self.request.query(name).map(SStr::from_user)
    }

    /// The authenticated user.
    pub fn user(&self) -> &AuthenticatedUser {
        self.user
    }

    /// The user's privileges (fetched from the web database in step 1).
    pub fn privileges(&self) -> &PrivilegeSet {
        &self.user.privileges
    }

    /// Queries a view of the application database, returning **labelled**
    /// documents: this is §4.4 step 2, where "SafeWeb's taint tracking
    /// library transparently adds the labels produced by units in the
    /// backend to the data fetched from the application database".
    ///
    /// Views are incrementally indexed by the store, so this is a lookup
    /// whose cost scales with the result set, not the database size.
    ///
    /// The view name is query *structure* and must be a
    /// [`safeweb_safeq::TrustedLiteral`] — in practice a `&'static str`
    /// written by the application author. The key is plain data (matched
    /// structurally against the index), so user input is safe there.
    pub fn records_by(
        &self,
        view: impl Into<safeweb_safeq::TrustedLiteral>,
        key: &str,
    ) -> Vec<SValue> {
        self.records
            .query_view_trusted(view, &safeweb_json::Value::from(key))
            .unwrap_or_default()
            .into_iter()
            .map(|doc| {
                let (_, _, labels, body) = doc.into_parts();
                SValue::with_label_set(body, labels)
            })
            .collect()
    }

    /// Fetches one labelled document by id.
    pub fn record(&self, id: &str) -> Option<SValue> {
        self.records.get(id).map(|doc| {
            let (_, _, labels, body) = doc.into_parts();
            SValue::with_label_set(body, labels)
        })
    }
}

/// A route handler.
pub type RouteHandler = Arc<dyn Fn(&Ctx<'_>) -> SResponse + Send + Sync>;

/// Frontend options.
#[derive(Debug, Clone)]
pub struct FrontendOptions {
    /// When `false`, the response label check is skipped — the paper's
    /// §5.3 "without taint tracking" baseline. Never disable in production.
    pub label_checking: bool,
    /// When `false`, routes registered with [`SafeWebApp::get_cached`] are
    /// served as if registered with [`SafeWebApp::get`] — every request
    /// renders. Useful for measuring the cache's contribution.
    pub render_caching: bool,
}

impl Default for FrontendOptions {
    fn default() -> FrontendOptions {
        FrontendOptions {
            label_checking: true,
            render_caching: true,
        }
    }
}

/// Cumulative per-phase timing counters (nanoseconds), reproducing the
/// Figure 5 frontend breakdown.
///
/// A thin view over [`safeweb_obs`] counters: each field is a shared
/// handle, so [`SafeWebApp::attach_metrics`] can surface the same
/// counters in a [`MetricsRegistry`] without double counting. Counter
/// increments are relaxed; the accessors read with acquire ordering, so
/// a reader observing one phase's total also observes every increment
/// that preceded it.
#[derive(Debug, Default)]
pub struct FrontendStats {
    requests: Counter,
    auth_ns: Counter,
    privilege_fetch_ns: Counter,
    handler_ns: Counter,
    label_check_ns: Counter,
    denied: Counter,
    render_cache_hits: Counter,
    render_cache_misses: Counter,
}

impl FrontendStats {
    /// Requests served (after routing).
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Total time verifying passwords.
    pub fn auth_ns(&self) -> u64 {
        self.auth_ns.get()
    }

    /// Total time fetching users/privileges from the web database.
    pub fn privilege_fetch_ns(&self) -> u64 {
        self.privilege_fetch_ns.get()
    }

    /// Total time in route handlers (template rendering etc.).
    pub fn handler_ns(&self) -> u64 {
        self.handler_ns.get()
    }

    /// Total time checking response labels.
    pub fn label_check_ns(&self) -> u64 {
        self.label_check_ns.get()
    }

    /// Responses aborted by the label check — each one is a contained
    /// policy violation.
    pub fn denied(&self) -> u64 {
        self.denied.get()
    }

    /// Requests on cacheable routes served from the per-clearance render
    /// cache (no handler run, no re-check).
    pub fn render_cache_hits(&self) -> u64 {
        self.render_cache_hits.get()
    }

    /// Requests on cacheable routes that had to render (cold entry, store
    /// advanced, or evicted).
    pub fn render_cache_misses(&self) -> u64 {
        self.render_cache_misses.get()
    }
}

type AuthLookup = Arc<dyn Fn(&Database, &str) -> Option<Row> + Send + Sync>;

/// The SafeWeb application: routes plus the enforcement middleware.
pub struct SafeWebApp {
    router: Router,
    handlers: Vec<RouteHandler>,
    /// Parallel to `handlers`: whether the route opted into the
    /// per-clearance render cache via [`SafeWebApp::get_cached`].
    cacheable: Vec<bool>,
    /// Parallel to `handlers`: end-to-end request latency per route.
    route_ns: Vec<Histogram>,
    /// Parallel to `handlers`: the metric-safe route name ("get
    /// /records/:mid") — the author-written pattern, never the concrete
    /// request path, so parameter values cannot leak into span names.
    route_names: Vec<String>,
    users: UserStore,
    records: DocStore,
    options: FrontendOptions,
    stats: Arc<FrontendStats>,
    render_cache: RenderCache,
    auth_lookup: AuthLookup,
}

impl SafeWebApp {
    /// Creates an application over the given user store and application
    /// database (the read-only DMZ replica in the deployed topology).
    pub fn new(users: UserStore, records: DocStore) -> SafeWebApp {
        SafeWebApp {
            router: Router::new(),
            handlers: Vec::new(),
            cacheable: Vec::new(),
            route_ns: Vec::new(),
            route_names: Vec::new(),
            users,
            records,
            options: FrontendOptions::default(),
            stats: Arc::new(FrontendStats::default()),
            render_cache: RenderCache::new(),
            auth_lookup: Arc::new(|db, name| {
                db.get("users", &CellValue::from(name)).ok().flatten()
            }),
        }
    }

    /// Overrides options (baseline benchmarking only).
    pub fn with_options(mut self, options: FrontendOptions) -> SafeWebApp {
        self.options = options;
        self
    }

    /// Replaces the user-lookup function — the hook used by the §5.2
    /// "errors in access checks" experiment to inject a case-insensitive
    /// username bug.
    pub fn with_auth_lookup(
        mut self,
        lookup: impl Fn(&Database, &str) -> Option<Row> + Send + Sync + 'static,
    ) -> SafeWebApp {
        self.auth_lookup = Arc::new(lookup);
        self
    }

    /// Registers a GET route.
    pub fn get(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Ctx<'_>) -> SResponse + Send + Sync + 'static,
    ) {
        self.add_route(Method::Get, pattern, handler);
    }

    /// Registers a GET route whose rendered pages may be shared across
    /// users **with equal privilege sets** via the per-clearance render
    /// cache.
    ///
    /// Opting in is a promise about the handler: its output must be a
    /// function of the request path and query, the caller's privileges, and
    /// the document store only — never of the username or other per-user
    /// state (no `ctx.user().username`-dependent branching). The cache key
    /// is `(route, path+query, PrivilegeSetId)` and entries are tagged with
    /// the store's change sequence, so two users hit the same entry iff
    /// their interned privilege sets are *identical* and the store has not
    /// advanced. Only responses that passed the boundary label check (200,
    /// untainted, released for that exact clearance) are ever stored.
    pub fn get_cached(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Ctx<'_>) -> SResponse + Send + Sync + 'static,
    ) {
        self.add_route(Method::Get, pattern, handler);
        *self
            .cacheable
            .last_mut()
            .expect("add_route pushed a handler") = true;
    }

    /// Registers a POST route.
    pub fn post(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Ctx<'_>) -> SResponse + Send + Sync + 'static,
    ) {
        self.add_route(Method::Post, pattern, handler);
    }

    fn add_route(
        &mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(&Ctx<'_>) -> SResponse + Send + Sync + 'static,
    ) {
        let idx = self.handlers.len();
        self.handlers.push(Arc::new(handler));
        self.cacheable.push(false);
        self.route_ns.push(Histogram::new());
        let verb = match method {
            Method::Get => "get",
            Method::Post => "post",
            _ => "other",
        };
        self.route_names.push(format!("{verb} {pattern}"));
        self.router.add(method, pattern, idx);
    }

    /// Per-phase timing counters.
    pub fn stats(&self) -> Arc<FrontendStats> {
        Arc::clone(&self.stats)
    }

    /// Wires the frontend's telemetry into `registry`: the Figure 5
    /// phase counters (`web.requests`, `web.auth_ns`,
    /// `web.privilege_fetch_ns`, `web.handler_ns`, `web.label_check_ns`,
    /// `web.denied`), one `web.route_ns.<name>` latency histogram per
    /// registered route (named by the author-written pattern), and —
    /// only when render caching is enabled — the cache counters plus a
    /// derived `web.render_cache.hit_rate` gauge. A cache-disabled
    /// frontend registers *no* cache metrics, so its snapshots cannot
    /// report stale zeros as live cache behaviour.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        registry.register_counter("web.requests", &self.stats.requests);
        registry.register_counter("web.auth_ns", &self.stats.auth_ns);
        registry.register_counter("web.privilege_fetch_ns", &self.stats.privilege_fetch_ns);
        registry.register_counter("web.handler_ns", &self.stats.handler_ns);
        registry.register_counter("web.label_check_ns", &self.stats.label_check_ns);
        registry.register_counter("web.denied", &self.stats.denied);
        for (name, histogram) in self.route_names.iter().zip(&self.route_ns) {
            registry.register_histogram(&format!("web.route_ns.{name}"), histogram);
        }
        if self.options.render_caching {
            let hits = self.stats.render_cache_hits.clone();
            let misses = self.stats.render_cache_misses.clone();
            registry.register_counter("web.render_cache.hits", &hits);
            registry.register_counter("web.render_cache.misses", &misses);
            registry.register_derived("web.render_cache.hit_rate", move || {
                // Read misses before hits: a racing request bumps hits
                // only after its miss, so the ratio can understate but
                // never exceed 1.
                let m = misses.get();
                let h = hits.get();
                let total = h + m;
                if total == 0 {
                    0.0
                } else {
                    h as f64 / total as f64
                }
            });
        } else {
            registry.unregister("web.render_cache.hits");
            registry.unregister("web.render_cache.misses");
            registry.unregister("web.render_cache.hit_rate");
        }
    }

    /// Serves one request through the full middleware pipeline
    /// (Figure 3 steps 1–4).
    ///
    /// Every routed request is traced: a fresh [`TraceId`] becomes the
    /// ambient scope for the handler (so events it publishes and
    /// documents it writes inherit it), a `frontend` span named by the
    /// route *pattern* is recorded, and the id is echoed back in the
    /// `x-safeweb-trace` response header for `/__obs/trace/:id` lookups.
    pub fn handle(&self, request: &Request) -> Response {
        // Route first: unknown paths 404 without burning auth time.
        let Some((handler_idx, params)) = self.router.route(request.method(), request.path())
        else {
            return Response::new(404).with_body("not found");
        };
        let trace = TraceId::mint();
        let _scope = trace_scope(trace);
        let span_start = safeweb_obs::now_ns();
        let response = self.serve(handler_idx, params, request);
        self.route_ns[handler_idx].observe(safeweb_obs::now_ns().saturating_sub(span_start));
        record_span(
            "frontend",
            &self.route_names[handler_idx],
            trace,
            span_start,
            None,
        );
        response.with_header("x-safeweb-trace", trace.to_string())
    }

    /// The middleware pipeline proper, running under the request's trace
    /// scope.
    fn serve(
        &self,
        handler_idx: usize,
        params: BTreeMap<String, String>,
        request: &Request,
    ) -> Response {
        self.stats.requests.inc();

        // Step 1: authenticate and fetch privileges.
        let Some((username, password)) = request.basic_auth() else {
            return Response::new(401)
                .with_header("www-authenticate", "Basic realm=\"SafeWeb\"")
                .with_body("authentication required");
        };
        let fetch_start = Instant::now();
        let row = (self.auth_lookup)(self.users.database(), &username);
        self.stats
            .privilege_fetch_ns
            .add(fetch_start.elapsed().as_nanos() as u64);

        let auth_start = Instant::now();
        let user = row.and_then(|row| self.users.verify_row(&row, &password));
        self.stats
            .auth_ns
            .add(auth_start.elapsed().as_nanos() as u64);
        let Some(user) = user else {
            return Response::new(401)
                .with_header("www-authenticate", "Basic realm=\"SafeWeb\"")
                .with_body("bad credentials");
        };

        // Per-clearance render cache (opt-in routes only, and only while
        // label checking is on — the cached body is the *released* one).
        // The seq is read before the handler runs; if the store advances
        // mid-render the entry is born stale, which is the safe direction.
        let cache_route = self.options.render_caching
            && self.options.label_checking
            && self.cacheable[handler_idx];
        let (path_query, seq) = if cache_route {
            let mut key = request.path().to_string();
            let mut sep = '?';
            for (name, value) in request.query_params() {
                key.push(sep);
                key.push_str(name);
                key.push('=');
                key.push_str(value);
                sep = '&';
            }
            (key, self.records.seq())
        } else {
            (String::new(), 0)
        };
        if cache_route {
            if let Some(page) =
                self.render_cache
                    .get(handler_idx, &path_query, user.privileges.id(), seq)
            {
                self.stats.render_cache_hits.inc();
                return Response::new(page.status)
                    .with_header("content-type", page.content_type)
                    .with_body(page.body);
            }
            self.stats.render_cache_misses.inc();
        }

        // Steps 2–3: run the handler over labelled data.
        let ctx = Ctx {
            request,
            params,
            user: &user,
            records: &self.records,
        };
        let handler_start = Instant::now();
        let sresponse = (self.handlers[handler_idx])(&ctx);
        self.stats
            .handler_ns
            .add(handler_start.elapsed().as_nanos() as u64);

        // Step 4: the label check at the boundary.
        let check_start = Instant::now();
        let released = if self.options.label_checking {
            if sresponse.body.is_user_tainted() {
                self.stats.denied.inc();
                self.stats
                    .label_check_ns
                    .add(check_start.elapsed().as_nanos() as u64);
                return Response::new(500).with_body("response contains unsanitised user input");
            }
            match sresponse.body.check_release(&user.privileges) {
                Ok(s) => s.to_string(),
                Err(e) => {
                    self.stats.denied.inc();
                    self.stats
                        .label_check_ns
                        .add(check_start.elapsed().as_nanos() as u64);
                    // The error page must not leak which labels blocked.
                    let _ = e;
                    return Response::new(403).with_body("access denied by security policy");
                }
            }
        } else {
            sresponse.body.as_str().to_string()
        };
        self.stats
            .label_check_ns
            .add(check_start.elapsed().as_nanos() as u64);

        // Cache only fully released 200s, keyed by the exact clearance the
        // label check just ran against.
        if cache_route && sresponse.status == 200 {
            self.render_cache.put(
                handler_idx,
                &path_query,
                user.privileges.id(),
                seq,
                &RenderedPage {
                    status: sresponse.status,
                    content_type: sresponse.content_type.clone(),
                    body: released.clone(),
                },
            );
        }

        Response::new(sresponse.status)
            .with_header("content-type", sresponse.content_type.clone())
            .with_body(released)
    }

    /// Adapts the app into an [`safeweb_http::Handler`] for serving.
    pub fn into_handler(self: Arc<SafeWebApp>) -> safeweb_http::Handler {
        Arc::new(move |request: Request| self.handle(&request))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::AuthConfig;
    use safeweb_json::jobject;
    use safeweb_labels::{Label, LabelSet, Privilege};

    fn setup() -> (SafeWebApp, DocStore) {
        let users = UserStore::new(
            Database::new("web"),
            AuthConfig {
                hash_iterations: 500,
            },
        );
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::clearance(Label::conf("e", "mdt/a")));
        users.create_user("mdt_a", "pw", &privs, false).unwrap();
        users
            .create_user("nosy", "pw", &PrivilegeSet::new(), false)
            .unwrap();

        let records = DocStore::new("app");
        records.create_view("by_mid", "mdt_id");
        records
            .put(
                "rec-1",
                jobject! {"mdt_id" => "a", "patient" => "Ann"},
                LabelSet::singleton(Label::conf("e", "mdt/a")),
                None,
            )
            .unwrap();

        let mut app = SafeWebApp::new(users, records.clone());
        app.get("/records/:mid", |ctx: &Ctx<'_>| {
            let mid = ctx.param_raw("mid").unwrap_or("");
            let docs = ctx.records_by("by_mid", mid);
            let body = SStr::concat_all(
                docs.iter()
                    .map(|d| d.to_json_sstr())
                    .collect::<Vec<_>>()
                    .iter(),
            );
            SResponse::json(body)
        });
        (app, records)
    }

    fn req(path: &str, user: &str) -> Request {
        Request::new(Method::Get, path).with_basic_auth(user, "pw")
    }

    #[test]
    fn cleared_user_reads_records() {
        let (app, _) = setup();
        let resp = app.handle(&req("/records/a", "mdt_a"));
        assert_eq!(resp.status(), 200);
        assert!(resp.body_str().unwrap().contains("Ann"));
    }

    #[test]
    fn uncleared_user_gets_403_without_detail() {
        let (app, _) = setup();
        let resp = app.handle(&req("/records/a", "nosy"));
        assert_eq!(resp.status(), 403);
        let body = resp.body_str().unwrap();
        assert!(
            !body.contains("mdt"),
            "error page must not leak labels: {body}"
        );
        assert_eq!(app.stats().denied(), 1);
    }

    #[test]
    fn missing_or_bad_credentials_get_401() {
        let (app, _) = setup();
        let resp = app.handle(&Request::new(Method::Get, "/records/a"));
        assert_eq!(resp.status(), 401);
        assert!(resp.headers().get("www-authenticate").is_some());
        let resp =
            app.handle(&Request::new(Method::Get, "/records/a").with_basic_auth("mdt_a", "wrong"));
        assert_eq!(resp.status(), 401);
    }

    #[test]
    fn unknown_route_is_404_before_auth() {
        let (app, _) = setup();
        let resp = app.handle(&Request::new(Method::Get, "/nowhere"));
        assert_eq!(resp.status(), 404);
        assert_eq!(app.stats().requests(), 0);
    }

    #[test]
    fn user_tainted_response_is_blocked() {
        let users = UserStore::new(
            Database::new("web"),
            AuthConfig {
                hash_iterations: 500,
            },
        );
        users
            .create_user("u", "pw", &PrivilegeSet::new(), false)
            .unwrap();
        let mut app = SafeWebApp::new(users, DocStore::new("app"));
        app.get("/echo", |ctx: &Ctx<'_>| {
            // Bug: echoes raw user input without sanitising.
            SResponse::html(ctx.query("q").unwrap_or_else(|| SStr::public("")))
        });
        let resp = app.handle(
            &Request::new(Method::Get, "/echo?q=<script>x</script>").with_basic_auth("u", "pw"),
        );
        assert_eq!(resp.status(), 500);
        assert!(!resp.body_str().unwrap().contains("<script>"));
    }

    #[test]
    fn label_checking_off_is_baseline_mode() {
        let (app, _) = setup();
        let app = app.with_options(FrontendOptions {
            label_checking: false,
            ..Default::default()
        });
        // Baseline: even the uncleared user gets data (measured config only).
        let resp = app.handle(&req("/records/a", "nosy"));
        assert_eq!(resp.status(), 200);
    }

    /// An app with a cached route over the same records as `setup()`, plus
    /// a second user whose privileges equal `mdt_a`'s (distinct username,
    /// same interned clearance).
    fn setup_cached() -> (SafeWebApp, DocStore) {
        let users = UserStore::new(
            Database::new("web"),
            AuthConfig {
                hash_iterations: 500,
            },
        );
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::clearance(Label::conf("e", "mdt/a")));
        users.create_user("mdt_a", "pw", &privs, false).unwrap();
        users.create_user("peer_a", "pw", &privs, false).unwrap();
        users
            .create_user("nosy", "pw", &PrivilegeSet::new(), false)
            .unwrap();

        let records = DocStore::new("app");
        records.create_view("by_mid", "mdt_id");
        records
            .put(
                "rec-1",
                jobject! {"mdt_id" => "a", "patient" => "Ann"},
                LabelSet::singleton(Label::conf("e", "mdt/a")),
                None,
            )
            .unwrap();

        let mut app = SafeWebApp::new(users, records.clone());
        app.get_cached("/records/:mid", |ctx: &Ctx<'_>| {
            let mid = ctx.param_raw("mid").unwrap_or("");
            let docs = ctx.records_by("by_mid", mid);
            let body = SStr::concat_all(
                docs.iter()
                    .map(|d| d.to_json_sstr())
                    .collect::<Vec<_>>()
                    .iter(),
            );
            SResponse::json(body)
        });
        (app, records)
    }

    #[test]
    fn cached_route_shares_pages_across_equal_clearances() {
        let (app, _) = setup_cached();
        let first = app.handle(&req("/records/a", "mdt_a"));
        assert_eq!(first.status(), 200);
        // Same user again: hit.
        let second = app.handle(&req("/records/a", "mdt_a"));
        assert_eq!(second.status(), 200);
        assert_eq!(second.body_str().unwrap(), first.body_str().unwrap());
        // Different user, *equal* privilege set: also a hit.
        let peer = app.handle(&req("/records/a", "peer_a"));
        assert_eq!(peer.status(), 200);
        assert_eq!(peer.body_str().unwrap(), first.body_str().unwrap());
        let stats = app.stats();
        assert_eq!(stats.render_cache_misses(), 1);
        assert_eq!(stats.render_cache_hits(), 2);
    }

    #[test]
    fn cached_route_never_crosses_clearances() {
        let (app, _) = setup_cached();
        // Warm the cache as the cleared user.
        assert_eq!(app.handle(&req("/records/a", "mdt_a")).status(), 200);
        // The uncleared user must still be denied — a denial is never
        // cached, and the cleared user's page is under a different key.
        let resp = app.handle(&req("/records/a", "nosy"));
        assert_eq!(resp.status(), 403);
        assert!(!resp.body_str().unwrap().contains("Ann"));
        // And the denial must not have poisoned the cleared user's entry.
        let again = app.handle(&req("/records/a", "mdt_a"));
        assert_eq!(again.status(), 200);
        assert!(again.body_str().unwrap().contains("Ann"));
    }

    #[test]
    fn cached_route_invalidates_when_store_advances() {
        let (app, records) = setup_cached();
        let first = app.handle(&req("/records/a", "mdt_a"));
        assert!(first.body_str().unwrap().contains("Ann"));
        let rev = records.get("rec-1").unwrap().rev().clone();
        records
            .put(
                "rec-1",
                jobject! {"mdt_id" => "a", "patient" => "Bea"},
                LabelSet::singleton(Label::conf("e", "mdt/a")),
                Some(&rev),
            )
            .unwrap();
        let second = app.handle(&req("/records/a", "mdt_a"));
        assert!(
            second.body_str().unwrap().contains("Bea"),
            "store advanced, cache entry must be stale"
        );
        let stats = app.stats();
        assert_eq!(stats.render_cache_hits(), 0);
        assert_eq!(stats.render_cache_misses(), 2);
    }

    #[test]
    fn render_caching_can_be_disabled() {
        let (app, _) = setup_cached();
        let app = app.with_options(FrontendOptions {
            render_caching: false,
            ..Default::default()
        });
        app.handle(&req("/records/a", "mdt_a"));
        app.handle(&req("/records/a", "mdt_a"));
        let stats = app.stats();
        assert_eq!(stats.render_cache_hits(), 0);
        assert_eq!(stats.render_cache_misses(), 0);
    }

    #[test]
    fn cache_disabled_frontend_registers_no_cache_metrics() {
        let (app, _) = setup_cached();
        let app = app.with_options(FrontendOptions {
            render_caching: false,
            ..Default::default()
        });
        let registry = MetricsRegistry::new();
        app.attach_metrics(&registry);
        app.handle(&req("/records/a", "mdt_a"));
        let names = registry.names();
        assert!(
            names.iter().all(|n| !n.contains("render_cache")),
            "cache-disabled frontend must expose no cache metrics: {names:?}"
        );
        // The rest of the surface is still there.
        assert!(names.iter().any(|n| n == "web.requests"));
        assert_eq!(
            registry.snapshot().get("web.requests").unwrap().as_i64(),
            Some(1)
        );
    }

    #[test]
    fn cache_enabled_frontend_reports_hit_rate() {
        let (app, _) = setup_cached();
        let registry = MetricsRegistry::new();
        app.attach_metrics(&registry);
        app.handle(&req("/records/a", "mdt_a")); // miss
        app.handle(&req("/records/a", "mdt_a")); // hit
        app.handle(&req("/records/a", "mdt_a")); // hit
        let snap = registry.snapshot();
        assert_eq!(
            snap.get("web.render_cache.misses").unwrap().as_i64(),
            Some(1)
        );
        assert_eq!(snap.get("web.render_cache.hits").unwrap().as_i64(), Some(2));
        let rate = snap
            .get("web.render_cache.hit_rate")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((rate - 2.0 / 3.0).abs() < 1e-9, "hit rate {rate}");
    }

    #[test]
    fn responses_carry_the_trace_header() {
        let (app, _) = setup();
        let resp = app.handle(&req("/records/a", "mdt_a"));
        let id = resp.headers().get("x-safeweb-trace").expect("trace header");
        assert!(id.parse::<TraceId>().is_ok(), "unparseable trace id {id}");
        // Untraceable requests (no route) carry none.
        let resp = app.handle(&Request::new(Method::Get, "/nowhere"));
        assert!(resp.headers().get("x-safeweb-trace").is_none());
    }

    #[test]
    fn stats_accumulate() {
        let (app, _) = setup();
        app.handle(&req("/records/a", "mdt_a"));
        let stats = app.stats();
        assert_eq!(stats.requests(), 1);
        assert!(stats.auth_ns() > 0);
        assert!(stats.privilege_fetch_ns() > 0);
        assert!(stats.handler_ns() > 0);
    }
}
