//! # safeweb-web
//!
//! SafeWeb's web frontend (§4.4, Figure 3): a Sinatra-like framework whose
//! middleware enforces the information-flow policy on every HTTP
//! round-trip:
//!
//! 1. the request is **authenticated** (HTTP basic auth) and the user's
//!    **privileges fetched** from the web database,
//! 2. handlers query the application database through [`Ctx`], receiving
//!    **labelled** values ([`safeweb_taint::SValue`]),
//! 3. the application computes a response with labelled strings — aided by
//!    an ERB-like [`Template`] engine that propagates labels through
//!    rendering,
//! 4. before the response leaves, its **labels are checked against the
//!    user's privileges**; on violation the request is aborted with a
//!    content-free 403 (and the attempt counted).
//!
//! A second, independent net: responses still carrying the user-taint bit
//! (unsanitised user input) are aborted with a 500 — the XSS defence.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod app;
mod auth;
mod render_cache;
mod router;
mod template;

pub use app::{Ctx, FrontendOptions, FrontendStats, RouteHandler, SResponse, SafeWebApp};
pub use auth::{
    hash_password, privileges_to_wire, wire_to_privileges, AuthConfig, AuthenticatedUser, UserStore,
};
pub use router::{RoutePattern, Router};
pub use template::{TContext, TValue, Template, TemplateError};
