//! XSS escape coverage for the template engine: every sink that renders
//! an [`SStr`] must HTML-escape `<`, `>`, `&`, `"` and `'` whenever the
//! value is user-tainted (and always in `<%= %>` mode), across all
//! template constructs — top-level interpolation, loop bodies, `if`
//! bodies, dotted paths and `raw` mode.
//!
//! The suite is written as a mutation check: each test asserts the
//! *exact* escaped output (or the absence of raw metacharacters via the
//! [`assert_escaped`] oracle), so deleting the `sanitize_html()` call in
//! the renderer — or weakening the taint condition around it — fails the
//! suite. A final negative control proves the oracle has teeth by showing
//! it fires on the one legitimately-unescaped path (`raw` + trusted).

use proptest::prelude::*;
use safeweb_taint::SStr;
use safeweb_web::{TContext, TValue, Template};

/// All five characters `sanitize_html` must neutralise, in one payload.
const METACHARS: &str = "<>&\"'";

/// The payload as it must appear after escaping.
const METACHARS_ESCAPED: &str = "&lt;&gt;&amp;&quot;&#39;";

/// Oracle: `rendered` contains no raw HTML metacharacter outside the five
/// known escape entities. Returns rather than panicking so the negative
/// control can observe a failure without aborting.
fn is_escaped(rendered: &str) -> bool {
    if rendered.contains(['<', '>', '"', '\'']) {
        return false;
    }
    // Every `&` must begin one of the entities the sanitiser emits.
    let bytes = rendered.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'&' {
            let rest = &rendered[i..];
            if !["&amp;", "&lt;", "&gt;", "&quot;", "&#39;"]
                .iter()
                .any(|e| rest.starts_with(e))
            {
                return false;
            }
        }
    }
    true
}

/// Panicking form of the oracle for positive tests.
fn assert_escaped(rendered: &SStr) {
    assert!(
        is_escaped(rendered.as_str()),
        "raw HTML metacharacter survived: {:?}",
        rendered.as_str()
    );
    assert!(
        !rendered.is_user_tainted(),
        "escaped output must shed the user-taint bit"
    );
}

#[test]
fn interp_escapes_every_metacharacter_exactly() {
    let t = Template::parse("<%= v %>").unwrap();
    // Public value: `<%= %>` escapes unconditionally.
    let out = t
        .render(&TContext::new().bind("v", SStr::public(METACHARS)))
        .unwrap();
    assert_eq!(out.as_str(), METACHARS_ESCAPED);
    // User-tainted value: same result, taint cleared.
    let out = t
        .render(&TContext::new().bind("v", SStr::from_user(METACHARS)))
        .unwrap();
    assert_eq!(out.as_str(), METACHARS_ESCAPED);
    assert!(!out.is_user_tainted());
}

#[test]
fn raw_mode_still_escapes_user_taint() {
    let t = Template::parse("<%= raw v %>").unwrap();
    let out = t
        .render(&TContext::new().bind("v", SStr::from_user(METACHARS)))
        .unwrap();
    assert_eq!(out.as_str(), METACHARS_ESCAPED);
    assert!(!out.is_user_tainted());
}

#[test]
fn loop_body_sink_escapes() {
    let t = Template::parse("<% for p in rows %><td><%= p.name %></td><% end %>").unwrap();
    let rows = TValue::List(vec![
        TContext::new().bind("name", SStr::from_user("<script>alert(1)</script>")),
        TContext::new().bind("name", SStr::from_user("\"'&")),
    ]);
    let out = t.render(&TContext::new().bind("rows", rows)).unwrap();
    assert_eq!(
        out.as_str(),
        "<td>&lt;script&gt;alert(1)&lt;/script&gt;</td><td>&quot;&#39;&amp;</td>"
    );
}

#[test]
fn loop_body_raw_sink_escapes_tainted_rows() {
    let t = Template::parse("<% for p in rows %><%= raw p.name %><% end %>").unwrap();
    let rows = TValue::List(vec![
        TContext::new().bind("name", SStr::from_user("<img onerror=x>"))
    ]);
    let out = t.render(&TContext::new().bind("rows", rows)).unwrap();
    assert_escaped(&out);
    assert!(out.as_str().contains("&lt;img"));
}

#[test]
fn if_body_sink_escapes() {
    let t = Template::parse("<% if show %><%= v %><% end %>").unwrap();
    let ctx = TContext::new()
        .bind("show", true)
        .bind("v", SStr::from_user("';alert(String.fromCharCode(88))//"));
    let out = t.render(&ctx).unwrap();
    assert_escaped(&out);
    assert!(out.as_str().starts_with("&#39;;alert"));
}

#[test]
fn attribute_context_cannot_be_broken_out_of() {
    // Quote escaping is what keeps a payload inside an HTML attribute.
    let t = Template::parse("<a title=\"<%= v %>\">x</a>").unwrap();
    let ctx = TContext::new().bind("v", SStr::from_user("\" onmouseover=\"evil()"));
    let out = t.render(&ctx).unwrap();
    assert_eq!(
        out.as_str(),
        "<a title=\"&quot; onmouseover=&quot;evil()\">x</a>"
    );
}

#[test]
fn dotted_path_single_item_sink_escapes() {
    let t = Template::parse("<%= row.v %>").unwrap();
    let row = TValue::List(vec![TContext::new().bind("v", SStr::from_user(METACHARS))]);
    let out = t.render(&TContext::new().bind("row", row)).unwrap();
    assert_eq!(out.as_str(), METACHARS_ESCAPED);
}

#[test]
fn oracle_has_teeth() {
    // Negative control for the mutation check: the one path that is
    // *supposed* to emit raw markup (`raw` + trusted server HTML) must
    // trip the oracle. If this stops failing the oracle, the oracle —
    // and therefore every assert_escaped above — has gone blind.
    let t = Template::parse("<%= raw v %>").unwrap();
    let out = t
        .render(&TContext::new().bind("v", SStr::public("<b>bold</b>")))
        .unwrap();
    assert!(
        !is_escaped(out.as_str()),
        "oracle failed to flag deliberately raw markup"
    );
}

proptest! {
    /// Any printable user payload, rendered through any escaping sink,
    /// leaves no raw metacharacter in the page.
    #[test]
    fn arbitrary_user_payloads_are_neutralised(payload in "\\PC{0,48}") {
        for template in ["<%= v %>", "<%= raw v %>", "<% if g %><%= v %><% end %>"] {
            let t = Template::parse(template).expect("static template parses");
            let ctx = TContext::new()
                .bind("g", true)
                .bind("v", SStr::from_user(payload.clone()));
            let out = t.render(&ctx).expect("render succeeds");
            prop_assert!(
                is_escaped(out.as_str()),
                "template {template:?} leaked metacharacters for {payload:?}: {:?}",
                out.as_str()
            );
        }
    }
}
