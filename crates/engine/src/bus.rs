//! Abstraction over how the engine reaches the event broker: in-process
//! (embedded [`Broker`]) or over the network (STOMP client).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;

use safeweb_broker::{Broker, Delivery, EventClient};
use safeweb_events::LabelledEvent;
use safeweb_labels::PrivilegeSet;

use crate::error::EngineError;

/// A push-mode delivery callback: invoked once per matching delivery,
/// returning whether the subscriber is still alive (`false` counts the
/// delivery as suppressed, like a disconnected channel). The scheduled
/// engine's sinks **block** when the owning unit's inbox is at capacity —
/// that is the backpressure edge between the bus and the scheduler.
pub type DeliverySink = Box<dyn Fn(Delivery) -> bool + Send + Sync>;

/// The engine's view of the broker.
pub trait EventBus: Send + Sync {
    /// Registers a subscription; deliveries arrive on the returned channel.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Bus`] on transport failure.
    fn subscribe(
        &self,
        client: &str,
        subscription_id: &str,
        topic: &str,
        selector: Option<&str>,
        clearance: PrivilegeSet,
    ) -> Result<Receiver<Delivery>, EngineError>;

    /// Registers a subscription whose deliveries are pushed through
    /// `sink` instead of a channel — the wakeup path of the scheduled
    /// engine: a delivery lands directly in the unit's bounded inbox and
    /// makes its task ready, with no per-unit thread parked in a select.
    ///
    /// The embedded broker overrides this to invoke `sink` on the
    /// publisher's thread. The default bridges transports that only
    /// expose a channel (the remote STOMP bus) with one forwarding
    /// thread per subscription; the thread exits when the channel
    /// disconnects or the sink reports the subscriber gone.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Bus`] on transport failure.
    fn subscribe_with(
        &self,
        client: &str,
        subscription_id: &str,
        topic: &str,
        selector: Option<&str>,
        clearance: PrivilegeSet,
        sink: DeliverySink,
    ) -> Result<(), EngineError> {
        let rx = self.subscribe(client, subscription_id, topic, selector, clearance)?;
        std::thread::Builder::new()
            .name(format!("safeweb-bus-pump-{client}-{subscription_id}"))
            .spawn(move || {
                for delivery in rx.iter() {
                    if !sink(delivery) {
                        return;
                    }
                }
            })
            .map_err(|e| EngineError::Bus(format!("spawn bus pump failed: {e}")))?;
        Ok(())
    }

    /// Publishes a labelled event.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Bus`] on transport failure.
    fn publish(&self, event: &LabelledEvent) -> Result<(), EngineError>;

    /// Publishes a batch of labelled events in one bus pass where the
    /// backend supports it. The default forwards events one by one
    /// (correct for transports with no batch framing, like STOMP); the
    /// embedded broker overrides it to amortize routing locks and stats
    /// across the batch.
    ///
    /// # Errors
    ///
    /// Every event is attempted even when an earlier one fails (matching
    /// the pre-batching per-event sink); the first failure is returned.
    fn publish_batch(&self, events: Vec<LabelledEvent>) -> Result<(), EngineError> {
        let mut first_error = None;
        for event in events {
            if let Err(e) = self.publish(&event) {
                first_error.get_or_insert(e);
            }
        }
        match first_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl EventBus for Broker {
    fn subscribe(
        &self,
        client: &str,
        subscription_id: &str,
        topic: &str,
        selector: Option<&str>,
        clearance: PrivilegeSet,
    ) -> Result<Receiver<Delivery>, EngineError> {
        let selector = match selector {
            Some(src) => Some(
                safeweb_selector::Selector::parse(src)
                    .map_err(|e| EngineError::Bus(format!("bad selector: {e}")))?,
            ),
            None => None,
        };
        Ok(Broker::subscribe(
            self,
            client,
            subscription_id,
            topic,
            selector,
            clearance,
        ))
    }

    fn subscribe_with(
        &self,
        client: &str,
        subscription_id: &str,
        topic: &str,
        selector: Option<&str>,
        clearance: PrivilegeSet,
        sink: DeliverySink,
    ) -> Result<(), EngineError> {
        let selector = match selector {
            Some(src) => Some(
                safeweb_selector::Selector::parse(src)
                    .map_err(|e| EngineError::Bus(format!("bad selector: {e}")))?,
            ),
            None => None,
        };
        Broker::subscribe_sink(
            self,
            client,
            subscription_id,
            topic,
            selector,
            clearance,
            sink,
        );
        Ok(())
    }

    fn publish(&self, event: &LabelledEvent) -> Result<(), EngineError> {
        Broker::publish(self, event);
        Ok(())
    }

    fn publish_batch(&self, events: Vec<LabelledEvent>) -> Result<(), EngineError> {
        Broker::publish_batch(self, events);
        Ok(())
    }
}

struct RemoteBusInner {
    publisher: Mutex<EventClient>,
    subscriber: Mutex<EventClient>,
    routes: Mutex<HashMap<String, crossbeam::channel::Sender<Delivery>>>,
    reader_started: Mutex<bool>,
}

/// [`EventBus`] over a networked broker: one STOMP connection for
/// publishing and one for subscriptions, with a reader thread dispatching
/// `MESSAGE` frames to per-subscription channels by subscription id.
///
/// With a remote bus, clearance is assigned **server-side** from the
/// broker's policy file based on the login; the `clearance` argument to
/// [`EventBus::subscribe`] is ignored.
#[derive(Clone)]
pub struct RemoteBus {
    inner: Arc<RemoteBusInner>,
}

impl RemoteBus {
    /// Connects both legs to `addr`, logging in as `login`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Bus`] on connection failure.
    pub fn connect(addr: &str, login: &str) -> Result<RemoteBus, EngineError> {
        let publisher =
            EventClient::connect(addr, login).map_err(|e| EngineError::Bus(e.to_string()))?;
        let subscriber =
            EventClient::connect(addr, login).map_err(|e| EngineError::Bus(e.to_string()))?;
        Ok(RemoteBus {
            inner: Arc::new(RemoteBusInner {
                publisher: Mutex::new(publisher),
                subscriber: Mutex::new(subscriber),
                routes: Mutex::new(HashMap::new()),
                reader_started: Mutex::new(false),
            }),
        })
    }

    fn ensure_reader(&self) {
        let mut started = self.inner.reader_started.lock();
        if *started {
            return;
        }
        *started = true;
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name("safeweb-remote-bus-reader".to_string())
            .spawn(move || loop {
                // Lock only for one bounded receive so `subscribe` can
                // interleave SUBSCRIBE frames on the same connection.
                let next = {
                    let mut client = inner.subscriber.lock();
                    client.next_delivery_timeout(Duration::from_millis(50))
                };
                match next {
                    Ok(Some(d)) => {
                        let routes = inner.routes.lock();
                        if let Some(tx) = routes.get(&d.subscription_id) {
                            let _ = tx.send(Delivery {
                                subscription_id: d.subscription_id.into(),
                                event: std::sync::Arc::new(d.event),
                            });
                        }
                    }
                    Ok(None) => {
                        // Timeout with no data: yield so writers can run.
                        std::thread::yield_now();
                    }
                    Err(_) => break,
                }
            })
            .expect("spawn remote bus reader");
    }
}

impl EventBus for RemoteBus {
    fn subscribe(
        &self,
        _client: &str,
        _subscription_id: &str,
        topic: &str,
        selector: Option<&str>,
        _clearance: PrivilegeSet,
    ) -> Result<Receiver<Delivery>, EngineError> {
        let (tx, rx) = unbounded();
        let id = {
            let mut client = self.inner.subscriber.lock();
            client
                .subscribe(topic, selector)
                .map_err(|e| EngineError::Bus(e.to_string()))?
        };
        self.inner.routes.lock().insert(id, tx);
        self.ensure_reader();
        Ok(rx)
    }

    fn publish(&self, event: &LabelledEvent) -> Result<(), EngineError> {
        self.inner
            .publisher
            .lock()
            .publish(event)
            .map_err(|e| EngineError::Bus(e.to_string()))
    }
}
