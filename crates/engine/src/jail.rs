//! The IFC jail (§4.3, Figure 2).
//!
//! In the paper, unit callbacks run in a thread with Ruby `$SAFE=4`: no
//! I/O, no access to shared state except the engine-mediated channels. In
//! Rust the equivalent is *capability discipline*: a callback receives only
//! a [`Jail`] handle, and every effect it can perform — publishing events,
//! reading/writing the unit's key-value store, I/O for privileged units —
//! goes through that handle, where label bookkeeping is enforced:
//!
//! * The jail maintains the ambient label set `$LABELS`, initialised to the
//!   labels of the event being processed.
//! * Reading a key from the store folds the key's labels into `$LABELS`.
//! * Publishing attaches `$LABELS` to the outgoing event; removing labels
//!   requires the declassification privilege, adding integrity labels the
//!   endorsement privilege. Adding confidentiality labels is always free.
//! * Writing to the store labels the key with `$LABELS` (± the same
//!   checked adjustments).

use std::collections::BTreeMap;

use safeweb_events::{Event, LabelledEvent};
use safeweb_labels::{Label, LabelSet, PrivilegeSet};

use crate::error::UnitError;

/// Label adjustments a unit may request when publishing or storing,
/// mirroring Listing 1's `:add => [...], :remove => $LABELS`.
#[derive(Debug, Clone, Default)]
pub struct Relabel {
    add: Vec<Label>,
    remove: RemoveSpec,
}

/// Which labels to remove from `$LABELS` on output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum RemoveSpec {
    /// Keep all labels (the default).
    #[default]
    None,
    /// Remove every current label — Listing 1's `:remove => $LABELS`.
    All,
    /// Remove the listed labels.
    Labels(Vec<Label>),
}

impl Relabel {
    /// No adjustment: output carries `$LABELS` unchanged.
    pub fn keep() -> Relabel {
        Relabel::default()
    }

    /// Adds a label to the output (builder style).
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, label: Label) -> Relabel {
        self.add.push(label);
        self
    }

    /// Removes every ambient label (requires declassification for each
    /// confidentiality label).
    pub fn remove_all(mut self) -> Relabel {
        self.remove = RemoveSpec::All;
        self
    }

    /// Removes one label (requires declassification if confidentiality).
    pub fn remove(mut self, label: Label) -> Relabel {
        match &mut self.remove {
            RemoveSpec::Labels(v) => v.push(label),
            RemoveSpec::None => self.remove = RemoveSpec::Labels(vec![label]),
            RemoveSpec::All => {}
        }
        self
    }
}

/// The per-unit labelled key-value store (§4.3: "the engine provides a
/// unit-specific key-value store with labels associated with keys").
#[derive(Debug, Default)]
pub struct LabelledStore {
    entries: BTreeMap<String, (String, LabelSet)>,
}

impl LabelledStore {
    /// Creates an empty store.
    pub fn new() -> LabelledStore {
        LabelledStore::default()
    }

    /// Raw read without label bookkeeping — only the engine uses this.
    pub(crate) fn get_raw(&self, key: &str) -> Option<&(String, LabelSet)> {
        self.entries.get(key)
    }

    pub(crate) fn set_raw(&mut self, key: &str, value: String, labels: LabelSet) {
        self.entries.insert(key.to_string(), (value, labels));
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Destination for events a jail publishes; implemented by the engine to
/// forward to the broker, and by tests to capture output.
pub trait PublishSink {
    /// Delivers a fully labelled event.
    fn deliver(&self, event: LabelledEvent);
}

impl<F: Fn(LabelledEvent)> PublishSink for F {
    fn deliver(&self, event: LabelledEvent) {
        self(event)
    }
}

/// Capability for raw I/O, handed only to privileged units (§4.3: "the
/// engine allows privileged units to execute without isolation ... and,
/// thus, access I/O facilities").
///
/// Holding an `IoCapability` is the *only* sanctioned way for a unit body
/// to reach the outside world; its presence in a unit's code is the audit
/// marker that the unit belongs to the trusted codebase (§5.2 counts these
/// units' lines as audited code).
#[derive(Debug, Clone, Copy)]
pub struct IoCapability {
    _private: (),
}

impl IoCapability {
    pub(crate) fn new() -> IoCapability {
        IoCapability { _private: () }
    }
}

/// The jail handle passed to unit callbacks.
pub struct Jail<'a> {
    unit: &'a str,
    labels: LabelSet,
    privileges: &'a PrivilegeSet,
    privileged: bool,
    store: &'a mut LabelledStore,
    sink: &'a dyn PublishSink,
    /// When false (baseline benchmarking only), label bookkeeping is
    /// skipped entirely.
    tracking: bool,
}

impl<'a> Jail<'a> {
    /// Creates a jail for one callback execution. `initial_labels` is the
    /// label set of the event being processed (empty for timer callbacks).
    pub(crate) fn new(
        unit: &'a str,
        initial_labels: LabelSet,
        privileges: &'a PrivilegeSet,
        privileged: bool,
        store: &'a mut LabelledStore,
        sink: &'a dyn PublishSink,
        tracking: bool,
    ) -> Jail<'a> {
        Jail {
            unit,
            labels: initial_labels,
            privileges,
            privileged,
            store,
            sink,
            tracking,
        }
    }

    /// The unit this jail belongs to.
    pub fn unit_name(&self) -> &str {
        self.unit
    }

    /// The ambient label set `$LABELS`.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// Whether this unit runs privileged (outside the jail's I/O
    /// restrictions).
    pub fn is_privileged(&self) -> bool {
        self.privileged
    }

    /// Adds a confidentiality label to `$LABELS`. Always permitted — data
    /// can freely become *more* restricted (§4.1: "it is always possible to
    /// add extra confidentiality labels to events").
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::EndorsementDenied`] when adding an integrity
    /// label without the endorsement privilege.
    pub fn add_label(&mut self, label: Label) -> Result<(), UnitError> {
        if label.is_integrity() && !self.privileges.can_endorse(&label) && !self.privileged {
            return Err(UnitError::EndorsementDenied(label));
        }
        self.labels.insert(label);
        Ok(())
    }

    /// The I/O capability, available only to privileged units.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::IoDenied`] for jailed units.
    pub fn io(&self) -> Result<IoCapability, UnitError> {
        if self.privileged {
            Ok(IoCapability::new())
        } else {
            Err(UnitError::IoDenied)
        }
    }

    /// Reads a value from the unit's key-value store, folding the key's
    /// labels into `$LABELS` (§4.3: "when a value is read from the store,
    /// `$LABELS` is updated to reflect its confidentiality").
    pub fn get(&mut self, key: &str) -> Option<String> {
        let (value, labels) = self.store.get_raw(key)?.clone();
        if self.tracking {
            // Interned union: a no-op pointer compare when the key's labels
            // are already covered by `$LABELS`, the common steady state.
            self.labels = self.labels.union(&labels);
        }
        Some(value)
    }

    /// Writes a value to the store labelled with `$LABELS` adjusted by
    /// `relabel` (checked like a publish).
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] if a removal lacks declassification or an
    /// integrity add lacks endorsement.
    pub fn set(
        &mut self,
        key: &str,
        value: impl Into<String>,
        relabel: Relabel,
    ) -> Result<(), UnitError> {
        let labels = self.output_labels(relabel)?;
        self.store.set_raw(key, value.into(), labels);
        Ok(())
    }

    /// Publishes an event. The outgoing event carries `$LABELS` adjusted by
    /// `relabel`; removals require declassification privileges, integrity
    /// additions require endorsement.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError`] when a label adjustment is not permitted — in
    /// which case **nothing is published**.
    pub fn publish(&mut self, event: Event, relabel: Relabel) -> Result<(), UnitError> {
        let labels = self.output_labels(relabel)?;
        self.sink.deliver(LabelledEvent::new(event, labels));
        Ok(())
    }

    /// Computes output labels = (`$LABELS` − removals) ∪ additions with
    /// privilege checks.
    fn output_labels(&self, relabel: Relabel) -> Result<LabelSet, UnitError> {
        if !self.tracking {
            return Ok(LabelSet::new());
        }
        let mut labels = self.labels;
        match relabel.remove {
            RemoveSpec::None => {}
            RemoveSpec::All => {
                for l in self.labels.iter() {
                    self.check_removal(l)?;
                }
                labels = LabelSet::new();
            }
            RemoveSpec::Labels(ref to_remove) => {
                for l in to_remove {
                    if labels.contains(l) {
                        self.check_removal(l)?;
                        labels.remove_unchecked(l);
                    }
                }
            }
        }
        for l in relabel.add {
            if l.is_integrity() && !self.privileged && !self.privileges.can_endorse(&l) {
                return Err(UnitError::EndorsementDenied(l));
            }
            labels.insert(l);
        }
        Ok(labels)
    }

    fn check_removal(&self, label: &Label) -> Result<(), UnitError> {
        if self.privileged {
            // Privileged units may declassify anything they received
            // (§4.3); their power is limited by withholding clearance.
            return Ok(());
        }
        if label.is_confidentiality() && !self.privileges.can_declassify(label) {
            return Err(UnitError::DeclassificationDenied(label.clone()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use safeweb_labels::Privilege;

    struct Capture(Mutex<Vec<LabelledEvent>>);

    impl PublishSink for Capture {
        fn deliver(&self, event: LabelledEvent) {
            self.0.lock().push(event);
        }
    }

    fn conf(p: &str) -> Label {
        Label::conf("e", p)
    }

    fn run_jail<R>(
        initial: &[Label],
        privileges: PrivilegeSet,
        privileged: bool,
        f: impl FnOnce(&mut Jail<'_>) -> R,
    ) -> (R, Vec<LabelledEvent>) {
        let mut store = LabelledStore::new();
        let capture = Capture(Mutex::new(Vec::new()));
        let r = {
            let mut jail = Jail::new(
                "test",
                initial.iter().cloned().collect(),
                &privileges,
                privileged,
                &mut store,
                &capture,
                true,
            );
            f(&mut jail)
        };
        (r, capture.0.into_inner())
    }

    #[test]
    fn publish_attaches_ambient_labels() {
        let (_, events) = run_jail(&[conf("p/1")], PrivilegeSet::new(), false, |jail| {
            jail.publish(Event::new("/out").unwrap(), Relabel::keep())
                .unwrap();
        });
        assert_eq!(events.len(), 1);
        assert!(events[0].labels().contains(&conf("p/1")));
    }

    #[test]
    fn adding_conf_labels_is_free() {
        let (_, events) = run_jail(&[], PrivilegeSet::new(), false, |jail| {
            jail.add_label(conf("extra")).unwrap();
            jail.publish(
                Event::new("/out").unwrap(),
                Relabel::keep().add(conf("more")),
            )
            .unwrap();
        });
        assert!(events[0].labels().contains(&conf("extra")));
        assert!(events[0].labels().contains(&conf("more")));
    }

    #[test]
    fn removal_requires_declassification() {
        let (res, events) = run_jail(&[conf("p/1")], PrivilegeSet::new(), false, |jail| {
            jail.publish(Event::new("/out").unwrap(), Relabel::keep().remove_all())
        });
        assert_eq!(res, Err(UnitError::DeclassificationDenied(conf("p/1"))));
        assert!(events.is_empty(), "denied publish must not emit anything");
    }

    #[test]
    fn removal_with_privilege_succeeds() {
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::declassify(conf("p/1")));
        let (res, events) = run_jail(&[conf("p/1")], privs, false, |jail| {
            jail.publish(
                Event::new("/out").unwrap(),
                Relabel::keep().remove_all().add(conf("list")),
            )
        });
        assert!(res.is_ok());
        assert!(!events[0].labels().contains(&conf("p/1")));
        assert!(events[0].labels().contains(&conf("list")));
    }

    #[test]
    fn selective_removal() {
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::declassify(conf("p/1")));
        let (res, events) = run_jail(&[conf("p/1"), conf("p/2")], privs, false, |jail| {
            jail.publish(
                Event::new("/out").unwrap(),
                Relabel::keep().remove(conf("p/1")),
            )
        });
        assert!(res.is_ok());
        assert!(!events[0].labels().contains(&conf("p/1")));
        assert!(events[0].labels().contains(&conf("p/2")));
    }

    #[test]
    fn privileged_unit_may_declassify_anything() {
        let (res, events) = run_jail(&[conf("p/1")], PrivilegeSet::new(), true, |jail| {
            jail.publish(Event::new("/out").unwrap(), Relabel::keep().remove_all())
        });
        assert!(res.is_ok());
        assert!(events[0].labels().is_empty());
    }

    #[test]
    fn io_capability_gated_on_privilege() {
        let (res, _) = run_jail(&[], PrivilegeSet::new(), false, |jail| jail.io());
        assert_eq!(res.unwrap_err(), UnitError::IoDenied);
        let (res, _) = run_jail(&[], PrivilegeSet::new(), true, |jail| jail.io());
        assert!(res.is_ok());
    }

    #[test]
    fn store_propagates_labels_through_state() {
        // Callback 1 stores under labels {p/1}; callback 2 reads it with
        // empty ambient labels and publishes — output must carry p/1.
        let mut store = LabelledStore::new();
        let capture = Capture(Mutex::new(Vec::new()));
        let privs = PrivilegeSet::new();
        {
            let mut jail = Jail::new(
                "u",
                LabelSet::singleton(conf("p/1")),
                &privs,
                false,
                &mut store,
                &capture,
                true,
            );
            jail.set("list", "patient-1", Relabel::keep()).unwrap();
        }
        {
            let mut jail = Jail::new(
                "u",
                LabelSet::new(),
                &privs,
                false,
                &mut store,
                &capture,
                true,
            );
            let v = jail.get("list").unwrap();
            assert_eq!(v, "patient-1");
            assert!(
                jail.labels().contains(&conf("p/1")),
                "read must taint $LABELS"
            );
            jail.publish(Event::new("/out").unwrap(), Relabel::keep())
                .unwrap();
        }
        let events = capture.0.into_inner();
        assert!(events[0].labels().contains(&conf("p/1")));
    }

    #[test]
    fn integrity_add_requires_endorsement() {
        let int = Label::int("e", "mdt");
        let (res, _) = run_jail(&[], PrivilegeSet::new(), false, |jail| {
            jail.publish(
                Event::new("/out").unwrap(),
                Relabel::keep().add(int.clone()),
            )
        });
        assert_eq!(res, Err(UnitError::EndorsementDenied(int.clone())));

        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::endorse(int.clone()));
        let (res, events) = run_jail(&[], privs, false, |jail| {
            jail.publish(
                Event::new("/out").unwrap(),
                Relabel::keep().add(int.clone()),
            )
        });
        assert!(res.is_ok());
        assert!(events[0].labels().contains(&int));
    }

    #[test]
    fn missing_key_reads_none() {
        let (res, _) = run_jail(&[], PrivilegeSet::new(), false, |jail| jail.get("nope"));
        assert!(res.is_none());
    }
}
