//! Engine and unit error types.

use std::fmt;

use safeweb_labels::Label;

/// Error raised by engine infrastructure (wiring units to the broker,
/// starting threads, remote bus failures).
#[derive(Debug)]
pub enum EngineError {
    /// Failure talking to the event bus.
    Bus(String),
    /// A unit name was registered twice.
    DuplicateUnit(String),
    /// The engine is already running / not running.
    BadState(&'static str),
    /// Durable storage could not be opened or recovered (deployment-level
    /// wiring: the engine itself holds no storage).
    Storage(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Bus(m) => write!(f, "event bus error: {m}"),
            EngineError::DuplicateUnit(n) => write!(f, "duplicate unit name {n:?}"),
            EngineError::BadState(m) => write!(f, "engine state error: {m}"),
            EngineError::Storage(m) => write!(f, "durable storage error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Error raised from inside a unit callback. Policy violations are the
/// interesting case: they are exactly the bugs SafeWeb exists to contain,
/// so the engine logs them and drops the offending operation rather than
/// letting data escape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitError {
    /// The unit attempted to remove a confidentiality label it may not
    /// declassify.
    DeclassificationDenied(Label),
    /// The unit attempted to add an integrity label it may not endorse.
    EndorsementDenied(Label),
    /// The unit attempted an I/O operation without being privileged.
    IoDenied,
    /// The published event was malformed.
    BadEvent(String),
    /// Application-level failure inside the callback.
    Application(String),
    /// The callback panicked. Under the scheduler the panic is contained
    /// (the unit is poisoned, its worker and every other unit keep
    /// running); the payload is preserved here.
    Panicked(String),
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::DeclassificationDenied(l) => {
                write!(f, "declassification denied for {l}")
            }
            UnitError::EndorsementDenied(l) => write!(f, "endorsement denied for {l}"),
            UnitError::IoDenied => write!(f, "I/O denied: unit is not privileged"),
            UnitError::BadEvent(m) => write!(f, "bad event: {m}"),
            UnitError::Application(m) => write!(f, "unit application error: {m}"),
            UnitError::Panicked(m) => write!(f, "unit panicked: {m}"),
        }
    }
}

impl std::error::Error for UnitError {}
