//! # safeweb-engine
//!
//! SafeWeb's event processing engine (§4.3): the runtime environment for
//! application units. Its three key functions, per the paper:
//!
//! 1. **control of unit execution** — callbacks run inside an IFC [`Jail`]
//!    that tracks the ambient label set `$LABELS` from received events
//!    through the per-unit key-value store to published events;
//! 2. **privilege assignment** — each unit's clearance/declassification/
//!    endorsement privileges come from the policy file, keyed by unit name;
//! 3. **environment restriction** — jailed units have no I/O capability;
//!    only units declared `privileged` in the policy receive one
//!    (the Rust analogue of running at Ruby `$SAFE=0` vs `$SAFE=4`;
//!    see DESIGN.md §5 for the substitution argument).
//!
//! Units are declared with [`UnitSpec`] (compare the paper's Listing 1) and
//! executed by [`Engine`] over any [`EventBus`] — the embedded broker or a
//! networked STOMP connection ([`RemoteBus`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bus;
mod engine;
mod error;
mod jail;

pub use bus::{DeliverySink, EventBus, RemoteBus};
pub use engine::{
    Callback, Engine, EngineHandle, EngineOptions, ExecutionMode, TimerCallback, UnitSpec,
    Violation,
};
pub use error::{EngineError, UnitError};
pub use jail::{IoCapability, Jail, LabelledStore, PublishSink, Relabel, RemoveSpec};
// Units run on the `safeweb-sched` worker pool by default; its options
// type is part of this crate's configuration surface.
pub use safeweb_sched::SchedulerOptions;
