//! The event processing engine (§4.3): configures, instantiates and runs
//! units, wiring their subscriptions to the broker and executing their
//! callbacks inside the IFC jail.
//!
//! # Execution modes
//!
//! * [`ExecutionMode::Scheduled`] (the default) multiplexes every unit
//!   onto a fixed [`safeweb_sched`] worker pool: each unit is one
//!   scheduler task with a bounded inbox, deliveries wake the task
//!   instead of a parked per-unit thread, and the thread count is set by
//!   [`SchedulerOptions::workers`] — independent of the unit count, so
//!   one process hosts thousands of units (one per tenant).
//! * [`ExecutionMode::Threaded`] keeps the original thread-per-unit
//!   model as the benchmark baseline, mirroring how the reactor refactor
//!   kept `ThreadedBrokerServer`.
//!
//! Both modes preserve the same unit-facing guarantees: strict FIFO
//! event order within a unit, no concurrent execution of one unit's
//! callbacks, burst-capped draining so a hot unit cannot starve the
//! rest, and batched flushing of each activation's published events in
//! one broker pass.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, tick, Receiver, Select};
use parking_lot::Mutex;

use safeweb_broker::Delivery;
use safeweb_events::{Event, LabelledEvent};
use safeweb_labels::{LabelSet, Policy, PrincipalKind};
use safeweb_sched::{Scheduler, SchedulerOptions, TaskSender};

use crate::bus::EventBus;
use crate::error::{EngineError, UnitError};
use crate::jail::{Jail, LabelledStore, PublishSink};

/// A unit callback: receives the jail and the event being processed.
pub type Callback = Box<dyn FnMut(&mut Jail<'_>, &Event) -> Result<(), UnitError> + Send>;

/// A timer callback for source units: receives only the jail (there is no
/// triggering event; `$LABELS` starts empty).
pub type TimerCallback = Box<dyn FnMut(&mut Jail<'_>) -> Result<(), UnitError> + Send>;

/// Declarative description of one event-processing unit, mirroring the
/// paper's Listing 1:
///
/// ```
/// use safeweb_engine::{Relabel, UnitSpec};
/// use safeweb_labels::Label;
///
/// let unit = UnitSpec::new("daily_list")
///     .subscribe("/patient_report", Some("type = 'cancer'"), |jail, event| {
///         let mut list = jail.get("patient_list").unwrap_or_default();
///         list.push_str(event.attr("patient_id").unwrap_or(""));
///         list.push(',');
///         jail.set("patient_list", list, Relabel::keep())
///     })
///     .subscribe("/next_day", None, |jail, _event| {
///         let list = jail.get("patient_list").unwrap_or_default();
///         jail.publish(
///             safeweb_events::Event::new("/daily_report").unwrap().with_payload(list),
///             Relabel::keep()
///                 .remove_all()
///                 .add(Label::conf("ecric.org.uk", "patient_list")),
///         )
///     });
/// assert_eq!(unit.name(), "daily_list");
/// ```
pub struct UnitSpec {
    name: String,
    subscriptions: Vec<(String, Option<String>, Callback)>,
    timers: Vec<(Duration, TimerCallback)>,
}

impl UnitSpec {
    /// Creates an empty unit description.
    pub fn new(name: &str) -> UnitSpec {
        UnitSpec {
            name: name.to_string(),
            subscriptions: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// The unit's name (its principal in the policy file).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a subscription callback.
    pub fn subscribe(
        mut self,
        topic: &str,
        selector: Option<&str>,
        callback: impl FnMut(&mut Jail<'_>, &Event) -> Result<(), UnitError> + Send + 'static,
    ) -> UnitSpec {
        self.subscriptions.push((
            topic.to_string(),
            selector.map(str::to_string),
            Box::new(callback),
        ));
        self
    }

    /// Registers a timer-driven callback (for source units that import
    /// data into the system, like the MDT data producer).
    pub fn every(
        mut self,
        interval: Duration,
        callback: impl FnMut(&mut Jail<'_>) -> Result<(), UnitError> + Send + 'static,
    ) -> UnitSpec {
        self.timers.push((interval, Box::new(callback)));
        self
    }
}

/// How the engine runs its units.
#[derive(Debug, Clone)]
pub enum ExecutionMode {
    /// All units share a fixed work-stealing worker pool
    /// (`crates/sched`): the production mode, whose thread count is
    /// independent of the unit count.
    Scheduled(SchedulerOptions),
    /// One OS thread per unit — the original model, kept as the
    /// benchmark baseline. Caps out at a few hundred units.
    Threaded,
}

impl Default for ExecutionMode {
    fn default() -> ExecutionMode {
        ExecutionMode::Scheduled(SchedulerOptions::default())
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// When `false`, all label bookkeeping is skipped. Exists **only** for
    /// the paper's §5.3 baseline measurements; never disable in production.
    pub label_tracking: bool,
    /// Unit execution model (scheduled worker pool by default).
    pub execution: ExecutionMode,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            label_tracking: true,
            execution: ExecutionMode::default(),
        }
    }
}

/// A policy violation observed at runtime: a unit attempted an operation
/// the jail refused. These are the bugs SafeWeb exists to contain — the
/// operation was suppressed; the record is for operators and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending unit.
    pub unit: String,
    /// What was refused.
    pub error: UnitError,
}

/// The event processing engine. Construct with [`Engine::new`], add units,
/// then [`Engine::start`].
pub struct Engine {
    bus: Arc<dyn EventBus>,
    policy: Policy,
    options: EngineOptions,
    units: Vec<UnitSpec>,
}

impl Engine {
    /// Creates an engine over `bus` with privileges assigned from
    /// `policy`.
    pub fn new(bus: Arc<dyn EventBus>, policy: Policy) -> Engine {
        Engine {
            bus,
            policy,
            options: EngineOptions::default(),
            units: Vec::new(),
        }
    }

    /// Overrides engine options (execution mode; label tracking for
    /// baseline benchmarking only).
    pub fn with_options(mut self, options: EngineOptions) -> Engine {
        self.options = options;
        self
    }

    /// Adds a unit.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DuplicateUnit`] if a unit with the same name
    /// was already added.
    pub fn add_unit(&mut self, unit: UnitSpec) -> Result<(), EngineError> {
        if self.units.iter().any(|u| u.name == unit.name) {
            return Err(EngineError::DuplicateUnit(unit.name));
        }
        self.units.push(unit);
        Ok(())
    }

    /// Starts every unit — on the shared scheduler pool or on its own
    /// thread, per [`EngineOptions::execution`] — and returns a handle
    /// for observing violations and stopping the engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if any subscription cannot be established.
    pub fn start(self) -> Result<EngineHandle, EngineError> {
        match self.options.execution.clone() {
            ExecutionMode::Scheduled(options) => self.start_scheduled(options),
            ExecutionMode::Threaded => self.start_threaded(),
        }
    }

    // ---- scheduled execution -------------------------------------------

    /// Starts the units as tasks on a fixed worker pool. Thread cost:
    /// `workers` pool threads plus one timer thread when any unit has
    /// timers — regardless of how many units there are.
    fn start_scheduled(self, options: SchedulerOptions) -> Result<EngineHandle, EngineError> {
        let violations = Arc::new(Mutex::new(Vec::new()));
        let scheduler: Scheduler<UnitMsg> = Scheduler::new(options);
        let mut timers: Vec<TimerEntry> = Vec::new();

        for unit in self.units {
            let privileges = self.policy.privileges(PrincipalKind::Unit, &unit.name);
            let privileged = self.policy.is_privileged_unit(&unit.name);
            let UnitSpec {
                name,
                subscriptions,
                timers: unit_timers,
            } = unit;

            // Split the spec: wiring metadata stays here, the callbacks
            // move into the task's handler.
            let mut topics = Vec::with_capacity(subscriptions.len());
            let mut callbacks: Vec<Callback> = Vec::with_capacity(subscriptions.len());
            for (topic, selector, callback) in subscriptions {
                topics.push((topic, selector));
                callbacks.push(callback);
            }
            let mut intervals = Vec::with_capacity(unit_timers.len());
            let mut timer_callbacks: Vec<TimerCallback> = Vec::with_capacity(unit_timers.len());
            for (interval, callback) in unit_timers {
                intervals.push(interval);
                timer_callbacks.push(callback);
            }

            let bus = Arc::clone(&self.bus);
            let tracking = self.options.label_tracking;
            let unit_violations = Arc::clone(&violations);
            let unit_name = name.clone();
            let jail_privileges = privileges;
            let mut store = LabelledStore::new();

            let sender = scheduler.spawn(&name, move |batch| {
                // One publish sink per activation: everything the burst's
                // callbacks emit flushes to the broker in a single
                // batched pass, exactly like the threaded path's
                // per-callback flush but amortised over the burst.
                let sink = BufferedBusSink::new();
                let mut failures: Vec<UnitError> = Vec::new();
                for msg in batch.drain(..) {
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match msg {
                            UnitMsg::Event { callback, delivery } => {
                                let initial = if tracking {
                                    *delivery.event.labels()
                                } else {
                                    LabelSet::new()
                                };
                                // The delivery's trace becomes the ambient
                                // scope: everything the callback publishes
                                // inherits it, and the slow-activation
                                // window sees which traces ran here.
                                let trace = delivery.event.trace_id();
                                let _scope = safeweb_obs::trace_scope(trace);
                                let span_start = safeweb_obs::now_ns();
                                let mut jail = Jail::new(
                                    &unit_name,
                                    initial,
                                    &jail_privileges,
                                    privileged,
                                    &mut store,
                                    &sink,
                                    tracking,
                                );
                                let result =
                                    (callbacks[callback])(&mut jail, delivery.event.event());
                                safeweb_obs::record_span(
                                    "engine",
                                    &unit_name,
                                    trace,
                                    span_start,
                                    Some(delivery.event.labels().id().as_u32()),
                                );
                                result
                            }
                            UnitMsg::Timer { timer } => {
                                let mut jail = Jail::new(
                                    &unit_name,
                                    LabelSet::new(),
                                    &jail_privileges,
                                    privileged,
                                    &mut store,
                                    &sink,
                                    tracking,
                                );
                                (timer_callbacks[timer])(&mut jail)
                            }
                        }));
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(error)) => failures.push(error),
                        Err(payload) => {
                            // The callback panicked mid-burst. Everything
                            // the jail already admitted — this burst's
                            // earlier callbacks' events included — still
                            // flushes, and recorded failures survive;
                            // only then does the panic continue to the
                            // scheduler, which poisons the unit.
                            flush_activation(
                                &sink,
                                bus.as_ref(),
                                &unit_name,
                                &unit_violations,
                                std::mem::take(&mut failures),
                            );
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
                // Events the jail admitted are published even when their
                // callback later failed — exactly as in threaded mode.
                flush_activation(&sink, bus.as_ref(), &unit_name, &unit_violations, failures);
            });

            // Deliveries land straight in the unit's bounded inbox and
            // make its task ready; a full inbox blocks an external
            // publisher — backpressure on the bus instead of unbounded
            // buffering. (Unit-to-unit publishes run on pool workers
            // and bypass the cap; see `TaskSender::send`.)
            for (idx, (topic, selector)) in topics.iter().enumerate() {
                let tx = sender.clone();
                self.bus.subscribe_with(
                    &name,
                    &format!("{name}-{idx}"),
                    topic,
                    selector.as_deref(),
                    privileges,
                    Box::new(move |delivery| {
                        tx.send(UnitMsg::Event {
                            callback: idx,
                            delivery,
                        })
                        .is_ok()
                    }),
                )?;
            }
            for (timer, interval) in intervals.into_iter().enumerate() {
                timers.push(TimerEntry {
                    interval,
                    next: Instant::now() + interval,
                    sender: sender.clone(),
                    timer,
                });
            }
        }

        let timer = (!timers.is_empty()).then(|| TimerDriver::start(timers));
        Ok(EngineHandle {
            violations,
            mode: HandleMode::Scheduled { scheduler, timer },
        })
    }

    // ---- threaded execution (bench baseline) ---------------------------

    fn start_threaded(self) -> Result<EngineHandle, EngineError> {
        let stop = Arc::new(AtomicBool::new(false));
        let violations = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();
        let mut stop_senders = Vec::new();

        for unit in self.units {
            let privileges = self.policy.privileges(PrincipalKind::Unit, &unit.name);
            let privileged = self.policy.is_privileged_unit(&unit.name);

            // Wire subscriptions before spawning so failures surface here.
            let mut receivers: Vec<(Receiver<Delivery>, usize)> = Vec::new();
            for (idx, (topic, selector, _)) in unit.subscriptions.iter().enumerate() {
                let rx = self.bus.subscribe(
                    &unit.name,
                    &format!("{}-{idx}", unit.name),
                    topic,
                    selector.as_deref(),
                    privileges,
                )?;
                receivers.push((rx, idx));
            }

            let (stop_tx, stop_rx) = bounded::<()>(0);
            stop_senders.push(stop_tx);

            let bus = Arc::clone(&self.bus);
            let tracking = self.options.label_tracking;
            let unit_violations = Arc::clone(&violations);
            let thread = std::thread::Builder::new()
                .name(format!("safeweb-unit-{}", unit.name))
                .spawn(move || {
                    run_unit(
                        unit,
                        privileges,
                        privileged,
                        receivers,
                        stop_rx,
                        bus,
                        tracking,
                        unit_violations,
                    );
                })
                .map_err(|e| EngineError::Bus(format!("spawn failed: {e}")))?;
            threads.push(thread);
        }

        Ok(EngineHandle {
            violations,
            mode: HandleMode::Threaded {
                stop,
                stop_senders,
                threads,
            },
        })
    }
}

/// One message in a scheduled unit's inbox.
enum UnitMsg {
    /// A broker delivery for subscription callback `callback`.
    Event { callback: usize, delivery: Delivery },
    /// Timer `timer` fired.
    Timer { timer: usize },
}

/// One armed unit timer, driven by the shared [`TimerDriver`] thread.
struct TimerEntry {
    interval: Duration,
    next: Instant,
    sender: TaskSender<UnitMsg>,
    timer: usize,
}

/// One thread drives **all** scheduled units' timers (the threaded mode
/// pays one tick channel — and its shim thread — per timer). Ticks are
/// delivered with a non-blocking send: a tick into a full or closed
/// inbox is dropped, coalescing exactly like a lagging tick channel.
/// Between ticks the thread sleeps on a condvar until the earliest
/// deadline — zero wakeups while no timer is due — and `stop` notifies
/// it out of the wait immediately.
struct TimerDriver {
    stop: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl TimerDriver {
    fn start(mut entries: Vec<TimerEntry>) -> TimerDriver {
        let stop = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let stop_pair = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("safeweb-engine-timers".to_string())
            .spawn(move || {
                let (stopped, wake) = &*stop_pair;
                loop {
                    let now = Instant::now();
                    let mut earliest: Option<Instant> = None;
                    for entry in &mut entries {
                        if entry.next <= now {
                            let _ = entry.sender.try_send(UnitMsg::Timer { timer: entry.timer });
                            // Missed ticks are skipped, not replayed.
                            entry.next = now + entry.interval;
                        }
                        earliest = Some(match earliest {
                            Some(at) => at.min(entry.next),
                            None => entry.next,
                        });
                    }
                    let wait = earliest
                        .map(|at| at.saturating_duration_since(Instant::now()))
                        .unwrap_or(Duration::from_secs(1))
                        .max(Duration::from_millis(1));
                    let guard = stopped.lock().unwrap_or_else(|e| e.into_inner());
                    if *guard {
                        return;
                    }
                    let (guard, _) = wake
                        .wait_timeout(guard, wait)
                        .unwrap_or_else(|e| e.into_inner());
                    if *guard {
                        return;
                    }
                }
            })
            .expect("spawn engine timer thread");
        TimerDriver {
            stop,
            thread: Some(thread),
        }
    }

    fn stop(&mut self) {
        let (stopped, wake) = &*self.stop;
        *stopped.lock().unwrap_or_else(|e| e.into_inner()) = true;
        wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

enum HandleMode {
    Scheduled {
        scheduler: Scheduler<UnitMsg>,
        timer: Option<TimerDriver>,
    },
    Threaded {
        stop: Arc<AtomicBool>,
        stop_senders: Vec<crossbeam::channel::Sender<()>>,
        threads: Vec<JoinHandle<()>>,
    },
    /// Shut down; violations (panics included) already folded in.
    Stopped,
}

/// Handle to a running engine.
pub struct EngineHandle {
    violations: Arc<Mutex<Vec<Violation>>>,
    mode: HandleMode,
}

impl EngineHandle {
    /// Policy violations observed so far (suppressed unit operations),
    /// including contained unit panics ([`UnitError::Panicked`]) under
    /// the scheduled execution mode.
    pub fn violations(&self) -> Vec<Violation> {
        let mut all = self.violations.lock().clone();
        if let HandleMode::Scheduled { scheduler, .. } = &self.mode {
            all.extend(scheduler.panics().into_iter().map(panic_violation));
        }
        all
    }

    /// Messages sitting in unit inboxes right now, summed across all
    /// units — the engine-side queue depth. A persistently high value
    /// means units are processing slower than the broker delivers and
    /// inbox backpressure is doing the bounding. Always `0` in threaded
    /// mode, where the bus hands deliveries straight to unit threads.
    pub fn queued_messages(&self) -> usize {
        match &self.mode {
            HandleMode::Scheduled { scheduler, .. } => scheduler.queued_messages(),
            _ => 0,
        }
    }

    /// Stops all units and joins their threads. In scheduled mode the
    /// shutdown is graceful: inboxes close, everything already accepted
    /// is drained, then the workers join. Returns the final violation
    /// list — the place where panics contained during the run surface.
    pub fn stop(mut self) -> Vec<Violation> {
        self.shutdown();
        self.violations.lock().clone()
    }

    fn shutdown(&mut self) {
        match std::mem::replace(&mut self.mode, HandleMode::Stopped) {
            HandleMode::Scheduled { scheduler, timer } => {
                if let Some(mut timer) = timer {
                    timer.stop();
                }
                scheduler.shutdown();
                let mut all = self.violations.lock();
                all.extend(scheduler.panics().into_iter().map(panic_violation));
            }
            HandleMode::Threaded {
                stop,
                stop_senders,
                threads,
            } => {
                if stop.swap(true, Ordering::SeqCst) {
                    return;
                }
                // Dropping the senders closes the stop channels, waking
                // selects.
                drop(stop_senders);
                for t in threads {
                    let _ = t.join();
                }
            }
            HandleMode::Stopped => {}
        }
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn panic_violation(panic: safeweb_sched::TaskPanic) -> Violation {
    Violation {
        unit: panic.task,
        error: UnitError::Panicked(panic.message),
    }
}

/// Ends one scheduled activation: flushes the buffered publish sink in a
/// single broker pass and records the burst's callback failures as
/// violations. Also runs on the panic path, so admitted events and
/// recorded failures survive a poisoned unit.
fn flush_activation(
    sink: &BufferedBusSink,
    bus: &dyn EventBus,
    unit: &str,
    violations: &Mutex<Vec<Violation>>,
    failures: Vec<UnitError>,
) {
    sink.flush(bus, unit, violations);
    if !failures.is_empty() {
        let mut all = violations.lock();
        all.extend(failures.into_iter().map(|error| Violation {
            unit: unit.to_string(),
            error,
        }));
    }
}

/// Publish sink handed to jails: buffers every event the callbacks of one
/// activation emit, then flushes them to the bus in a single
/// [`EventBus::publish_batch`] pass. Label checks still happen eagerly
/// inside [`Jail::publish`] — an event only reaches the buffer if its
/// relabelling was permitted, so batching changes delivery timing, not
/// policy enforcement.
struct BufferedBusSink {
    buffer: std::cell::RefCell<Vec<LabelledEvent>>,
}

impl BufferedBusSink {
    fn new() -> BufferedBusSink {
        BufferedBusSink {
            buffer: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Flushes buffered events; reports transport failures as violations
    /// against `unit`.
    fn flush(&self, bus: &dyn EventBus, unit: &str, violations: &Mutex<Vec<Violation>>) {
        let events = std::mem::take(&mut *self.buffer.borrow_mut());
        if events.is_empty() {
            return;
        }
        if let Err(e) = bus.publish_batch(events) {
            violations.lock().push(Violation {
                unit: unit.to_string(),
                error: UnitError::Application(format!("publish failed: {e}")),
            });
        }
    }
}

impl PublishSink for BufferedBusSink {
    fn deliver(&self, event: LabelledEvent) {
        self.buffer.borrow_mut().push(event);
    }
}

/// Upper bound on deliveries drained from one ready subscription before
/// re-entering select, so a hot subscription cannot starve timers or the
/// stop signal indefinitely. (The scheduled mode's equivalent knob is
/// [`SchedulerOptions::burst`].)
const DRAIN_LIMIT: usize = 128;

#[allow(clippy::too_many_arguments)]
fn run_unit(
    mut unit: UnitSpec,
    privileges: safeweb_labels::PrivilegeSet,
    privileged: bool,
    receivers: Vec<(Receiver<Delivery>, usize)>,
    stop_rx: Receiver<()>,
    bus: Arc<dyn EventBus>,
    tracking: bool,
    violations: Arc<Mutex<Vec<Violation>>>,
) {
    let mut store = LabelledStore::new();
    let tickers: Vec<Receiver<std::time::Instant>> = unit
        .timers
        .iter()
        .map(|(interval, _)| tick(*interval))
        .collect();

    // The select set is constructed once for the unit's lifetime — the
    // registered channels never change — instead of being rebuilt on
    // every event as the first implementation did.
    let mut select = Select::new();
    let stop_index = select.recv(&stop_rx);
    let sub_base: Vec<usize> = receivers.iter().map(|(rx, _)| select.recv(rx)).collect();
    let tick_base: Vec<usize> = tickers.iter().map(|rx| select.recv(rx)).collect();

    let mut batch: Vec<Delivery> = Vec::with_capacity(DRAIN_LIMIT);
    loop {
        let op = select.select();
        let index = op.index();

        if index == stop_index {
            // Channel closed (or unit told to stop): finish.
            let _ = op.recv(&stop_rx);
            return;
        }

        if let Some(pos) = sub_base.iter().position(|&i| i == index) {
            let (rx, cb_idx) = &receivers[pos];
            match op.recv(rx) {
                Ok(delivery) => batch.push(delivery),
                Err(_) => return, // bus gone
            }
            // Drain the burst without re-entering select per event.
            while batch.len() < DRAIN_LIMIT {
                match rx.try_recv() {
                    Ok(delivery) => batch.push(delivery),
                    Err(_) => break,
                }
            }
            let callback = &mut unit.subscriptions[*cb_idx].2;
            for delivery in batch.drain(..) {
                let sink = BufferedBusSink::new();
                let initial = if tracking {
                    *delivery.event.labels()
                } else {
                    LabelSet::new()
                };
                // Same trace propagation as the scheduled path.
                let trace = delivery.event.trace_id();
                let _scope = safeweb_obs::trace_scope(trace);
                let span_start = safeweb_obs::now_ns();
                let mut jail = Jail::new(
                    &unit.name,
                    initial,
                    &privileges,
                    privileged,
                    &mut store,
                    &sink,
                    tracking,
                );
                let result = callback(&mut jail, delivery.event.event());
                safeweb_obs::record_span(
                    "engine",
                    &unit.name,
                    trace,
                    span_start,
                    Some(delivery.event.labels().id().as_u32()),
                );
                // Events the jail admitted are published even when the
                // callback later failed — exactly as with the unbuffered
                // sink, where they had already left the unit.
                sink.flush(bus.as_ref(), &unit.name, &violations);
                if let Err(e) = result {
                    violations.lock().push(Violation {
                        unit: unit.name.clone(),
                        error: e,
                    });
                }
            }
            continue;
        }

        if let Some(pos) = tick_base.iter().position(|&i| i == index) {
            let _ = op.recv(&tickers[pos]);
            let callback = &mut unit.timers[pos].1;
            let sink = BufferedBusSink::new();
            let mut jail = Jail::new(
                &unit.name,
                LabelSet::new(),
                &privileges,
                privileged,
                &mut store,
                &sink,
                tracking,
            );
            let result = callback(&mut jail);
            sink.flush(bus.as_ref(), &unit.name, &violations);
            if let Err(e) = result {
                violations.lock().push(Violation {
                    unit: unit.name.clone(),
                    error: e,
                });
            }
        }
    }
}
