//! The event processing engine (§4.3): configures, instantiates and runs
//! units, wiring their subscriptions to the broker and executing their
//! callbacks inside the IFC jail.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, tick, Receiver, Select};
use parking_lot::Mutex;

use safeweb_broker::Delivery;
use safeweb_events::{Event, LabelledEvent};
use safeweb_labels::{LabelSet, Policy, PrincipalKind};

use crate::bus::EventBus;
use crate::error::{EngineError, UnitError};
use crate::jail::{Jail, LabelledStore, PublishSink};

/// A unit callback: receives the jail and the event being processed.
pub type Callback = Box<dyn FnMut(&mut Jail<'_>, &Event) -> Result<(), UnitError> + Send>;

/// A timer callback for source units: receives only the jail (there is no
/// triggering event; `$LABELS` starts empty).
pub type TimerCallback = Box<dyn FnMut(&mut Jail<'_>) -> Result<(), UnitError> + Send>;

/// Declarative description of one event-processing unit, mirroring the
/// paper's Listing 1:
///
/// ```
/// use safeweb_engine::{Relabel, UnitSpec};
/// use safeweb_labels::Label;
///
/// let unit = UnitSpec::new("daily_list")
///     .subscribe("/patient_report", Some("type = 'cancer'"), |jail, event| {
///         let mut list = jail.get("patient_list").unwrap_or_default();
///         list.push_str(event.attr("patient_id").unwrap_or(""));
///         list.push(',');
///         jail.set("patient_list", list, Relabel::keep())
///     })
///     .subscribe("/next_day", None, |jail, _event| {
///         let list = jail.get("patient_list").unwrap_or_default();
///         jail.publish(
///             safeweb_events::Event::new("/daily_report").unwrap().with_payload(list),
///             Relabel::keep()
///                 .remove_all()
///                 .add(Label::conf("ecric.org.uk", "patient_list")),
///         )
///     });
/// assert_eq!(unit.name(), "daily_list");
/// ```
pub struct UnitSpec {
    name: String,
    subscriptions: Vec<(String, Option<String>, Callback)>,
    timers: Vec<(Duration, TimerCallback)>,
}

impl UnitSpec {
    /// Creates an empty unit description.
    pub fn new(name: &str) -> UnitSpec {
        UnitSpec {
            name: name.to_string(),
            subscriptions: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// The unit's name (its principal in the policy file).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a subscription callback.
    pub fn subscribe(
        mut self,
        topic: &str,
        selector: Option<&str>,
        callback: impl FnMut(&mut Jail<'_>, &Event) -> Result<(), UnitError> + Send + 'static,
    ) -> UnitSpec {
        self.subscriptions.push((
            topic.to_string(),
            selector.map(str::to_string),
            Box::new(callback),
        ));
        self
    }

    /// Registers a timer-driven callback (for source units that import
    /// data into the system, like the MDT data producer).
    pub fn every(
        mut self,
        interval: Duration,
        callback: impl FnMut(&mut Jail<'_>) -> Result<(), UnitError> + Send + 'static,
    ) -> UnitSpec {
        self.timers.push((interval, Box::new(callback)));
        self
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// When `false`, all label bookkeeping is skipped. Exists **only** for
    /// the paper's §5.3 baseline measurements; never disable in production.
    pub label_tracking: bool,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            label_tracking: true,
        }
    }
}

/// A policy violation observed at runtime: a unit attempted an operation
/// the jail refused. These are the bugs SafeWeb exists to contain — the
/// operation was suppressed; the record is for operators and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending unit.
    pub unit: String,
    /// What was refused.
    pub error: UnitError,
}

/// The event processing engine. Construct with [`Engine::new`], add units,
/// then [`Engine::start`].
pub struct Engine {
    bus: Arc<dyn EventBus>,
    policy: Policy,
    options: EngineOptions,
    units: Vec<UnitSpec>,
}

impl Engine {
    /// Creates an engine over `bus` with privileges assigned from
    /// `policy`.
    pub fn new(bus: Arc<dyn EventBus>, policy: Policy) -> Engine {
        Engine {
            bus,
            policy,
            options: EngineOptions::default(),
            units: Vec::new(),
        }
    }

    /// Overrides engine options (baseline benchmarking only).
    pub fn with_options(mut self, options: EngineOptions) -> Engine {
        self.options = options;
        self
    }

    /// Adds a unit.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DuplicateUnit`] if a unit with the same name
    /// was already added.
    pub fn add_unit(&mut self, unit: UnitSpec) -> Result<(), EngineError> {
        if self.units.iter().any(|u| u.name == unit.name) {
            return Err(EngineError::DuplicateUnit(unit.name));
        }
        self.units.push(unit);
        Ok(())
    }

    /// Starts every unit on its own thread and returns a handle for
    /// observing violations and stopping the engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if any subscription cannot be established.
    pub fn start(self) -> Result<EngineHandle, EngineError> {
        let stop = Arc::new(AtomicBool::new(false));
        let violations = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();
        let mut stop_senders = Vec::new();

        for unit in self.units {
            let privileges = self.policy.privileges(PrincipalKind::Unit, &unit.name);
            let privileged = self.policy.is_privileged_unit(&unit.name);

            // Wire subscriptions before spawning so failures surface here.
            let mut receivers: Vec<(Receiver<Delivery>, usize)> = Vec::new();
            for (idx, (topic, selector, _)) in unit.subscriptions.iter().enumerate() {
                let rx = self.bus.subscribe(
                    &unit.name,
                    &format!("{}-{idx}", unit.name),
                    topic,
                    selector.as_deref(),
                    privileges.clone(),
                )?;
                receivers.push((rx, idx));
            }

            let (stop_tx, stop_rx) = bounded::<()>(0);
            stop_senders.push(stop_tx);

            let bus = Arc::clone(&self.bus);
            let tracking = self.options.label_tracking;
            let unit_violations = Arc::clone(&violations);
            let thread = std::thread::Builder::new()
                .name(format!("safeweb-unit-{}", unit.name))
                .spawn(move || {
                    run_unit(
                        unit,
                        privileges,
                        privileged,
                        receivers,
                        stop_rx,
                        bus,
                        tracking,
                        unit_violations,
                    );
                })
                .map_err(|e| EngineError::Bus(format!("spawn failed: {e}")))?;
            threads.push(thread);
        }

        Ok(EngineHandle {
            stop,
            stop_senders,
            threads,
            violations,
        })
    }
}

/// Handle to a running engine.
pub struct EngineHandle {
    stop: Arc<AtomicBool>,
    stop_senders: Vec<crossbeam::channel::Sender<()>>,
    threads: Vec<JoinHandle<()>>,
    violations: Arc<Mutex<Vec<Violation>>>,
}

impl EngineHandle {
    /// Policy violations observed so far (suppressed unit operations).
    pub fn violations(&self) -> Vec<Violation> {
        self.violations.lock().clone()
    }

    /// Stops all units and joins their threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Dropping the senders closes the stop channels, waking selects.
        self.stop_senders.clear();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Publish sink handed to jails: buffers every event one callback
/// invocation emits, then flushes them to the bus in a single
/// [`EventBus::publish_batch`] pass. Label checks still happen eagerly
/// inside [`Jail::publish`] — an event only reaches the buffer if its
/// relabelling was permitted, so batching changes delivery timing, not
/// policy enforcement.
struct BufferedBusSink {
    buffer: std::cell::RefCell<Vec<LabelledEvent>>,
}

impl BufferedBusSink {
    fn new() -> BufferedBusSink {
        BufferedBusSink {
            buffer: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Flushes buffered events; reports transport failures as violations
    /// against `unit`.
    fn flush(&self, bus: &dyn EventBus, unit: &str, violations: &Mutex<Vec<Violation>>) {
        let events = std::mem::take(&mut *self.buffer.borrow_mut());
        if events.is_empty() {
            return;
        }
        if let Err(e) = bus.publish_batch(events) {
            violations.lock().push(Violation {
                unit: unit.to_string(),
                error: UnitError::Application(format!("publish failed: {e}")),
            });
        }
    }
}

impl PublishSink for BufferedBusSink {
    fn deliver(&self, event: LabelledEvent) {
        self.buffer.borrow_mut().push(event);
    }
}

/// Upper bound on deliveries drained from one ready subscription before
/// re-entering select, so a hot subscription cannot starve timers or the
/// stop signal indefinitely.
const DRAIN_LIMIT: usize = 128;

#[allow(clippy::too_many_arguments)]
fn run_unit(
    mut unit: UnitSpec,
    privileges: safeweb_labels::PrivilegeSet,
    privileged: bool,
    receivers: Vec<(Receiver<Delivery>, usize)>,
    stop_rx: Receiver<()>,
    bus: Arc<dyn EventBus>,
    tracking: bool,
    violations: Arc<Mutex<Vec<Violation>>>,
) {
    let mut store = LabelledStore::new();
    let tickers: Vec<Receiver<std::time::Instant>> = unit
        .timers
        .iter()
        .map(|(interval, _)| tick(*interval))
        .collect();

    // The select set is constructed once for the unit's lifetime — the
    // registered channels never change — instead of being rebuilt on
    // every event as the first implementation did.
    let mut select = Select::new();
    let stop_index = select.recv(&stop_rx);
    let sub_base: Vec<usize> = receivers.iter().map(|(rx, _)| select.recv(rx)).collect();
    let tick_base: Vec<usize> = tickers.iter().map(|rx| select.recv(rx)).collect();

    let mut batch: Vec<Delivery> = Vec::with_capacity(DRAIN_LIMIT);
    loop {
        let op = select.select();
        let index = op.index();

        if index == stop_index {
            // Channel closed (or unit told to stop): finish.
            let _ = op.recv(&stop_rx);
            return;
        }

        if let Some(pos) = sub_base.iter().position(|&i| i == index) {
            let (rx, cb_idx) = &receivers[pos];
            match op.recv(rx) {
                Ok(delivery) => batch.push(delivery),
                Err(_) => return, // bus gone
            }
            // Drain the burst without re-entering select per event.
            while batch.len() < DRAIN_LIMIT {
                match rx.try_recv() {
                    Ok(delivery) => batch.push(delivery),
                    Err(_) => break,
                }
            }
            let callback = &mut unit.subscriptions[*cb_idx].2;
            for delivery in batch.drain(..) {
                let sink = BufferedBusSink::new();
                let initial = if tracking {
                    delivery.event.labels().clone()
                } else {
                    LabelSet::new()
                };
                let mut jail = Jail::new(
                    &unit.name,
                    initial,
                    &privileges,
                    privileged,
                    &mut store,
                    &sink,
                    tracking,
                );
                let result = callback(&mut jail, delivery.event.event());
                // Events the jail admitted are published even when the
                // callback later failed — exactly as with the unbuffered
                // sink, where they had already left the unit.
                sink.flush(bus.as_ref(), &unit.name, &violations);
                if let Err(e) = result {
                    violations.lock().push(Violation {
                        unit: unit.name.clone(),
                        error: e,
                    });
                }
            }
            continue;
        }

        if let Some(pos) = tick_base.iter().position(|&i| i == index) {
            let _ = op.recv(&tickers[pos]);
            let callback = &mut unit.timers[pos].1;
            let sink = BufferedBusSink::new();
            let mut jail = Jail::new(
                &unit.name,
                LabelSet::new(),
                &privileges,
                privileged,
                &mut store,
                &sink,
                tracking,
            );
            let result = callback(&mut jail);
            sink.flush(bus.as_ref(), &unit.name, &violations);
            if let Err(e) = result {
                violations.lock().push(Violation {
                    unit: unit.name.clone(),
                    error: e,
                });
            }
        }
    }
}
