//! Integration tests for the engine: units exchanging labelled events
//! through the embedded broker, privilege enforcement end to end, and the
//! paper's Listing 1 example.

use std::sync::Arc;
use std::time::{Duration, Instant};

use safeweb_broker::Broker;
use safeweb_engine::{Engine, EngineOptions, Relabel, UnitError, UnitSpec};
use safeweb_events::Event;
use safeweb_labels::{Label, Policy, Privilege, PrivilegeSet};

fn policy(text: &str) -> Policy {
    text.parse().unwrap()
}

/// Waits until `cond` is true or panics after 5 seconds.
fn wait_for(mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for condition");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn unit_processes_and_republishes_with_labels() {
    let broker = Broker::new();
    let policy = policy(
        "
        unit doubler {
            clearance label:conf:e/*
        }
        ",
    );
    let mut engine = Engine::new(Arc::new(broker.clone()), policy);
    engine
        .add_unit(
            UnitSpec::new("doubler").subscribe("/in", None, |jail, event| {
                let n: i64 = event.attr("n").unwrap_or("0").parse().unwrap_or(0);
                jail.publish(
                    Event::new("/out")
                        .map_err(|e| UnitError::BadEvent(e.to_string()))?
                        .with_attr("n", &(n * 2).to_string()),
                    Relabel::keep(),
                )
            }),
        )
        .unwrap();
    let handle = engine.start().unwrap();

    // An external observer with clearance watches /out.
    let mut clearance = PrivilegeSet::new();
    clearance.grant(Privilege::clearance(Label::conf("e", "p/1")));
    let rx = broker.subscribe("observer", "1", "/out", None, clearance);

    broker.publish(
        &Event::new("/in")
            .unwrap()
            .with_attr("n", "21")
            .with_labels([Label::conf("e", "p/1")]),
    );

    let delivery = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(delivery.event.attr("n"), Some("42"));
    // Labels stuck to the derived event.
    assert!(delivery.event.labels().contains(&Label::conf("e", "p/1")));
    handle.stop();
}

#[test]
fn uncleared_unit_never_sees_labelled_events() {
    let broker = Broker::new();
    let policy = policy("unit spy {\n}\n"); // no clearance at all
    let mut engine = Engine::new(Arc::new(broker.clone()), policy);
    let seen = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let seen2 = Arc::clone(&seen);
    engine
        .add_unit(
            UnitSpec::new("spy").subscribe("/secret", None, move |_jail, _event| {
                seen2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Ok(())
            }),
        )
        .unwrap();
    let handle = engine.start().unwrap();

    broker.publish(
        &Event::new("/secret")
            .unwrap()
            .with_labels([Label::conf("e", "p/1")]),
    );
    // Public event on the same topic *is* delivered.
    broker.publish(&Event::new("/secret").unwrap().with_labels([]));

    wait_for(|| seen.load(std::sync::atomic::Ordering::SeqCst) == 1);
    assert_eq!(broker.stats().label_filtered(), 1);
    handle.stop();
}

#[test]
fn declassification_without_privilege_is_suppressed_and_recorded() {
    let broker = Broker::new();
    let policy = policy(
        "
        unit leaky {
            clearance label:conf:e/*
        }
        ",
    );
    let mut engine = Engine::new(Arc::new(broker.clone()), policy);
    engine
        .add_unit(
            UnitSpec::new("leaky").subscribe("/in", None, |jail, _event| {
                // Bug: tries to strip all labels without privilege.
                jail.publish(
                    Event::new("/public").map_err(|e| UnitError::BadEvent(e.to_string()))?,
                    Relabel::keep().remove_all(),
                )
            }),
        )
        .unwrap();
    let handle = engine.start().unwrap();

    let rx = broker.subscribe("observer", "1", "/public", None, PrivilegeSet::new());
    broker.publish(
        &Event::new("/in")
            .unwrap()
            .with_labels([Label::conf("e", "p/1")]),
    );

    wait_for(|| !handle.violations().is_empty());
    let violations = handle.violations();
    assert!(matches!(
        violations[0].error,
        UnitError::DeclassificationDenied(_)
    ));
    assert_eq!(violations[0].unit, "leaky");
    // Nothing leaked to /public.
    assert!(rx.try_recv().is_err());
    handle.stop();
}

#[test]
fn privileged_unit_declassifies_for_storage() {
    let broker = Broker::new();
    let policy = policy(
        "
        unit storage {
            privileged
            clearance label:conf:e/*
        }
        ",
    );
    let mut engine = Engine::new(Arc::new(broker.clone()), policy);
    engine
        .add_unit(
            UnitSpec::new("storage").subscribe("/in", None, |jail, event| {
                // Privileged: may perform I/O and relabel.
                let _io = jail.io()?;
                jail.publish(
                    Event::new("/stored")
                        .map_err(|e| UnitError::BadEvent(e.to_string()))?
                        .with_attr("from", event.attr("n").unwrap_or("-")),
                    Relabel::keep().remove_all().add(Label::conf("e", "mdt/a")),
                )
            }),
        )
        .unwrap();
    let handle = engine.start().unwrap();

    let mut clearance = PrivilegeSet::new();
    clearance.grant(Privilege::clearance(Label::conf("e", "mdt/a")));
    let rx = broker.subscribe("observer", "1", "/stored", None, clearance);

    broker.publish(
        &Event::new("/in")
            .unwrap()
            .with_attr("n", "7")
            .with_labels([Label::conf("e", "patient/7")]),
    );
    let d = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(d.event.labels().to_wire(), "label:conf:e/mdt/a");
    assert!(handle.violations().is_empty());
    handle.stop();
}

#[test]
fn listing1_daily_patient_list() {
    // The paper's Listing 1: accumulate patient ids from /patient_report,
    // then on /next_day publish the list relabelled as the patient-list
    // aggregate.
    let broker = Broker::new();
    let policy = policy(
        "
        unit daily_list {
            clearance label:conf:ecric.org.uk/*
            declassify label:conf:ecric.org.uk/patient/*
        }
        ",
    );
    let mut engine = Engine::new(Arc::new(broker.clone()), policy);
    engine
        .add_unit(
            UnitSpec::new("daily_list")
                .subscribe("/patient_report", Some("type = 'cancer'"), |jail, event| {
                    let mut list = jail.get("patient_list").unwrap_or_default();
                    if !list.is_empty() {
                        list.push(',');
                    }
                    list.push_str(event.attr("patient_id").unwrap_or("?"));
                    jail.set("patient_list", list, Relabel::keep())
                })
                .subscribe("/next_day", None, |jail, _event| {
                    let list = jail.get("patient_list").unwrap_or_default();
                    jail.publish(
                        Event::new("/daily_report")
                            .map_err(|e| UnitError::BadEvent(e.to_string()))?
                            .with_payload(list),
                        Relabel::keep()
                            .remove_all()
                            .add(Label::conf("ecric.org.uk", "patient_list")),
                    )
                }),
        )
        .unwrap();
    let handle = engine.start().unwrap();

    let mut clearance = PrivilegeSet::new();
    clearance.grant(Privilege::clearance(Label::conf(
        "ecric.org.uk",
        "patient_list",
    )));
    let rx = broker.subscribe("portal", "1", "/daily_report", None, clearance);

    for (id, typ) in [("1", "cancer"), ("2", "benign"), ("3", "cancer")] {
        broker.publish(
            &Event::new("/patient_report")
                .unwrap()
                .with_attr("type", typ)
                .with_attr("patient_id", id)
                .with_labels([Label::conf("ecric.org.uk", &format!("patient/{id}"))]),
        );
    }
    // Wait until both cancer reports are folded into the stored list (the
    // benign one is selector-filtered), then trigger the day rollover.
    wait_for(|| broker.stats().selector_filtered() >= 1 && broker.stats().delivered() >= 2);
    std::thread::sleep(Duration::from_millis(100));
    broker.publish(&Event::new("/next_day").unwrap().with_labels([]));

    let d = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(d.event.event().payload(), Some("1,3"));
    assert_eq!(
        d.event.labels().to_wire(),
        "label:conf:ecric.org.uk/patient_list"
    );
    assert!(handle.violations().is_empty());
    handle.stop();
}

#[test]
fn timer_units_fire_with_empty_labels() {
    let broker = Broker::new();
    let policy = policy("unit ticker {\n privileged \n}\n");
    let mut engine = Engine::new(Arc::new(broker.clone()), policy);
    engine
        .add_unit(
            UnitSpec::new("ticker").every(Duration::from_millis(20), |jail| {
                assert!(jail.labels().is_empty());
                jail.publish(
                    Event::new("/tick").map_err(|e| UnitError::BadEvent(e.to_string()))?,
                    Relabel::keep(),
                )
            }),
        )
        .unwrap();
    let rx = broker.subscribe("obs", "1", "/tick", None, PrivilegeSet::new());
    let handle = engine.start().unwrap();
    let d = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert!(d.event.labels().is_empty());
    handle.stop();
}

#[test]
fn label_tracking_off_is_baseline_mode() {
    let broker = Broker::new();
    let policy = policy("unit echo {\n clearance label:conf:e/* \n}\n");
    let mut engine = Engine::new(Arc::new(broker.clone()), policy).with_options(EngineOptions {
        label_tracking: false,
        ..EngineOptions::default()
    });
    engine
        .add_unit(
            UnitSpec::new("echo").subscribe("/in", None, |jail, _event| {
                jail.publish(
                    Event::new("/out").map_err(|e| UnitError::BadEvent(e.to_string()))?,
                    Relabel::keep(),
                )
            }),
        )
        .unwrap();
    let handle = engine.start().unwrap();
    let rx = broker.subscribe("obs", "1", "/out", None, PrivilegeSet::new());
    broker.publish(
        &Event::new("/in")
            .unwrap()
            .with_labels([Label::conf("e", "p/1")]),
    );
    let d = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    // Baseline mode: labels are not propagated (this is the measured
    // no-tracking configuration, not a security mode).
    assert!(d.event.labels().is_empty());
    handle.stop();
}

#[test]
fn duplicate_unit_rejected() {
    let broker = Broker::new();
    let mut engine = Engine::new(Arc::new(broker), Policy::new());
    engine.add_unit(UnitSpec::new("u")).unwrap();
    assert!(engine.add_unit(UnitSpec::new("u")).is_err());
}
