//! Scheduled-engine integration: the guarantees the worker-pool
//! execution mode must keep — panic isolation, inbox backpressure that
//! never stalls unrelated units, graceful draining shutdown, and a
//! thread count independent of the unit count.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use safeweb_broker::Broker;
use safeweb_engine::{Engine, EngineOptions, ExecutionMode, SchedulerOptions, UnitError, UnitSpec};
use safeweb_events::Event;
use safeweb_labels::Policy;

fn policy(text: &str) -> Policy {
    text.parse().unwrap()
}

fn scheduled(workers: usize, inbox_cap: usize, burst: usize) -> EngineOptions {
    EngineOptions {
        execution: ExecutionMode::Scheduled(SchedulerOptions {
            workers,
            inbox_cap,
            burst,
            name: "sched-itest".to_string(),
            ..Default::default()
        }),
        ..EngineOptions::default()
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A unit that panics mid-callback is poisoned, its worker survives,
/// every other unit keeps processing, and the panic surfaces from
/// [`safeweb_engine::EngineHandle::stop`] as [`UnitError::Panicked`].
#[test]
fn panicking_unit_is_isolated_and_surfaced_in_stop() {
    let broker = Broker::new();
    let policy = policy("unit bomber {\n}\nunit steady {\n}\n");
    let mut engine = Engine::new(Arc::new(broker.clone()), policy).with_options(scheduled(2, 8, 4));
    engine
        .add_unit(
            UnitSpec::new("bomber").subscribe("/in", None, |_jail, event| {
                if event.attr("arm") == Some("yes") {
                    panic!("wired to the doorknob");
                }
                Ok(())
            }),
        )
        .unwrap();
    let steady_count = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&steady_count);
    engine
        .add_unit(
            UnitSpec::new("steady").subscribe("/in", None, move |_jail, _event| {
                counter.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
        )
        .unwrap();
    let handle = engine.start().unwrap();

    broker.publish(
        &Event::new("/in")
            .unwrap()
            .with_attr("arm", "yes")
            .with_labels([]),
    );
    wait_for(
        || !handle.violations().is_empty(),
        "the contained panic to be visible",
    );

    // The pool keeps running: later events still reach the other unit.
    for _ in 0..10 {
        broker.publish(&Event::new("/in").unwrap().with_labels([]));
    }
    wait_for(
        || steady_count.load(Ordering::SeqCst) >= 11,
        "the steady unit to keep processing",
    );

    let violations = handle.stop();
    let panic = violations
        .iter()
        .find(|v| matches!(v.error, UnitError::Panicked(_)))
        .expect("stop must surface the contained panic");
    assert_eq!(panic.unit, "bomber");
    let UnitError::Panicked(message) = &panic.error else {
        unreachable!("matched above");
    };
    assert_eq!(message, "wired to the doorknob");
}

/// A panic part-way through one activation's burst must not swallow
/// what the burst already produced: events admitted by the jail before
/// the panic still reach the broker, then the unit is poisoned.
#[test]
fn panic_mid_burst_still_flushes_admitted_events() {
    let broker = Broker::new();
    let policy = policy("unit relay {\n}\n");
    // One worker with a generous burst, so the staged messages drain in
    // a single activation.
    let mut engine =
        Engine::new(Arc::new(broker.clone()), policy).with_options(scheduled(1, 64, 16));
    engine
        .add_unit(
            UnitSpec::new("relay").subscribe("/in", None, |jail, event| {
                match event.attr("do") {
                    Some("warmup") => std::thread::sleep(Duration::from_millis(150)),
                    Some("emit") => {
                        jail.publish(
                            Event::new("/out").map_err(|e| UnitError::BadEvent(e.to_string()))?,
                            safeweb_engine::Relabel::keep(),
                        )?;
                    }
                    _ => panic!("burst bomb"),
                }
                Ok(())
            }),
        )
        .unwrap();
    let handle = engine.start().unwrap();
    let rx = broker.subscribe(
        "observer",
        "1",
        "/out",
        None,
        safeweb_labels::PrivilegeSet::new(),
    );

    // The warmup occupies activation 1; "emit" and the bomb queue up
    // behind it and drain together in activation 2.
    for step in ["warmup", "emit", "boom"] {
        broker.publish(
            &Event::new("/in")
                .unwrap()
                .with_attr("do", step)
                .with_labels([]),
        );
    }

    // The admitted event must arrive even though the same burst panicked.
    rx.recv_timeout(Duration::from_secs(5))
        .expect("the pre-panic emission was lost");
    let violations = handle.stop();
    assert!(
        violations
            .iter()
            .any(|v| matches!(&v.error, UnitError::Panicked(m) if m == "burst bomb")),
        "panic not surfaced: {violations:?}"
    );
}

/// A slow unit whose inbox sits at `inbox_cap` pushes back on its
/// publisher (the bus blocks instead of buffering unboundedly) while an
/// unrelated unit on another worker keeps flowing; once the slow unit
/// drains, the blocked publisher completes and nothing is lost.
#[test]
fn slow_unit_at_inbox_cap_backpressures_without_stalling_others() {
    const CAP: usize = 4;
    const SLOW_EVENTS: usize = 24;

    let broker = Broker::new();
    let policy = policy("unit slow {\n}\nunit fast {\n}\n");
    let mut engine =
        Engine::new(Arc::new(broker.clone()), policy).with_options(scheduled(2, CAP, 2));

    let gate = Arc::new(AtomicBool::new(false));
    let slow_count = Arc::new(AtomicUsize::new(0));
    let (open, slow_counter) = (Arc::clone(&gate), Arc::clone(&slow_count));
    engine
        .add_unit(
            UnitSpec::new("slow").subscribe("/slow", None, move |_jail, _event| {
                while !open.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                slow_counter.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
        )
        .unwrap();
    let fast_count = Arc::new(AtomicUsize::new(0));
    let fast_counter = Arc::clone(&fast_count);
    engine
        .add_unit(
            UnitSpec::new("fast").subscribe("/fast", None, move |_jail, _event| {
                fast_counter.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
        )
        .unwrap();
    let handle = engine.start().unwrap();

    // A dedicated publisher floods the stalled unit: it must block at
    // the inbox cap, well short of finishing.
    let flood_broker = broker.clone();
    let publisher = std::thread::spawn(move || {
        for i in 0..SLOW_EVENTS {
            flood_broker.publish(
                &Event::new("/slow")
                    .unwrap()
                    .with_attr("i", &i.to_string())
                    .with_labels([]),
            );
        }
    });
    wait_for(
        || broker.stats().delivered() >= CAP as u64,
        "the flood to reach the cap",
    );
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        !publisher.is_finished(),
        "publisher should be blocked by the slow unit's bounded inbox"
    );

    // Unrelated traffic keeps flowing from another thread while that
    // publisher sits blocked.
    for _ in 0..20 {
        broker.publish(&Event::new("/fast").unwrap().with_labels([]));
    }
    wait_for(
        || fast_count.load(Ordering::SeqCst) >= 20,
        "the fast unit to process during the stall",
    );
    assert!(!publisher.is_finished(), "publisher must still be blocked");

    // Open the gate: the backlog drains, the publisher unblocks, and
    // every accepted event is processed exactly once.
    gate.store(true, Ordering::SeqCst);
    publisher.join().expect("publisher");
    wait_for(
        || slow_count.load(Ordering::SeqCst) >= SLOW_EVENTS,
        "the slow backlog to drain",
    );
    let violations = handle.stop();
    assert_eq!(slow_count.load(Ordering::SeqCst), SLOW_EVENTS);
    assert!(
        violations.is_empty(),
        "unexpected violations: {violations:?}"
    );
}

/// Graceful shutdown: everything the bus already accepted into unit
/// inboxes is processed before the workers join.
#[test]
fn stop_drains_in_flight_events() {
    let broker = Broker::new();
    let policy = policy("unit sink {\n}\n");
    let mut engine =
        Engine::new(Arc::new(broker.clone()), policy).with_options(scheduled(1, 256, 8));
    let count = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&count);
    engine
        .add_unit(
            UnitSpec::new("sink").subscribe("/in", None, move |_jail, _event| {
                std::thread::sleep(Duration::from_micros(200));
                counter.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
        )
        .unwrap();
    let handle = engine.start().unwrap();
    for _ in 0..100 {
        broker.publish(&Event::new("/in").unwrap().with_labels([]));
    }
    // Stop immediately: the publishes above all reached the inbox
    // (publish is synchronous into it), so all 100 must still be
    // processed by the draining shutdown.
    handle.stop();
    assert_eq!(count.load(Ordering::SeqCst), 100);
}

/// OS threads currently in this process, from `/proc/self/status`.
fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// The scheduled engine's thread count comes from `workers`, not from
/// how many units exist: 400 units on a two-worker pool adds two
/// threads (plus nothing else — no timers here).
#[test]
fn thread_count_is_independent_of_unit_count() {
    let broker = Broker::new();
    let mut engine =
        Engine::new(Arc::new(broker.clone()), Policy::new()).with_options(scheduled(2, 64, 8));
    let count = Arc::new(AtomicUsize::new(0));
    for i in 0..400 {
        let counter = Arc::clone(&count);
        engine
            .add_unit(UnitSpec::new(&format!("unit-{i}")).subscribe(
                &format!("/topic/{i}"),
                None,
                move |_jail, _event| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                },
            ))
            .unwrap();
    }
    let before = os_threads();
    let handle = engine.start().unwrap();
    let added = os_threads().saturating_sub(before);
    assert!(
        added <= 3,
        "400 scheduled units grew {added} threads; expected the 2 workers"
    );
    // And they are all live: one event each, all processed.
    for i in 0..400 {
        broker.publish(&Event::new(&format!("/topic/{i}")).unwrap().with_labels([]));
    }
    wait_for(
        || count.load(Ordering::SeqCst) >= 400,
        "every unit to process its event",
    );
    handle.stop();
}
