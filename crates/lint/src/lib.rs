//! # safeweb-lint
//!
//! The in-repo workspace analyzer that machine-checks SafeWeb's IFC
//! security invariants. SafeWeb's pitch is that developer mistakes
//! cannot become security bugs — but until this crate, the workspace's
//! *own* invariants (unsafe confined to `reactor::sys`, every
//! declassification justified, no concatenated string forming query
//! structure) were enforced by convention and grep, and PR 7 proved
//! convention fails: two `proptest!` suites silently never ran. In the
//! spirit of LWeb's statically-checked label policies, this crate is
//! the static layer that checks the enforcement layer itself.
//!
//! Six rules, all hard CI failures with `file:line` diagnostics:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-confinement`   | `unsafe` only in `reactor::sys`; every other crate root carries `#![forbid(unsafe_code)]` |
//! | `declassify-registry`  | every `TrustedLiteral::declassified` / `Privilege::declassify` / sanitiser call site is enumerated in `DECLASSIFY.toml` with a justification |
//! | `query-hygiene`        | `format!`/`+` output never flows (same function, token level) into `parse_trusted`, `select_spec`, `Selector::parse`, `records_by`, or view names |
//! | `lock-order`           | the per-crate `Mutex`/`RwLock` acquisition graph is acyclic |
//! | `telemetry-hygiene`    | payload/principal-derived values never flow (same function, token level) into `record_span`/`record_slow` names or registry metric names |
//! | `test-liveness`        | every `proptest!` fn carries `#[test]`; every `*_props.rs` / `tests/*.rs` file has a live test |
//!
//! Exemptions go in `lint.allow.toml`; every entry needs a written
//! justification, and a stale entry is itself a finding. The lint has
//! no parser and no `rustc` dependency: its own lexer (see [`lexer`])
//! feeds token-level rules, so it runs on code that does not compile
//! and cannot be fooled by strings or comments. It lints the whole
//! workspace including itself, the shims, and `tests/`.
//!
//! ```no_run
//! use std::path::Path;
//! let report = safeweb_lint::run_workspace(Path::new("."), &Default::default()).unwrap();
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fs;
use std::path::Path;

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod toml;
pub mod workspace;

pub use diag::{Allowlist, Finding, Report};
pub use rules::{Registry, RegistryEntry};
pub use workspace::{discover, FileKind, SourceFile, Workspace};

/// Where the lint looks for its policy files, workspace-relative.
pub const ALLOWLIST_PATH: &str = "lint.allow.toml";
/// Workspace-relative path of the declassification registry.
pub const REGISTRY_PATH: &str = "DECLASSIFY.toml";

/// Per-run knobs (all default to the checked-in policy files).
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Override the allowlist (None = `lint.allow.toml` under the
    /// root, which may be absent: an absent allowlist allows nothing).
    pub allowlist: Option<Allowlist>,
    /// Override the registry (None = `DECLASSIFY.toml` under the
    /// root; absent = empty registry).
    pub registry: Option<Registry>,
}

/// Runs every rule over a pre-built workspace with explicit policies —
/// the pure core that both [`run_workspace`] and the fixture tests
/// call.
pub fn run_rules(ws: &Workspace, registry: &Registry, allow: &Allowlist) -> Report {
    let mut findings = Vec::new();
    findings.extend(rules::check_unsafe_confinement(ws));
    findings.extend(rules::check_declassify_registry(ws, registry));
    findings.extend(rules::check_query_hygiene(ws));
    findings.extend(rules::check_lock_order(ws));
    findings.extend(rules::check_telemetry_hygiene(ws));
    findings.extend(rules::check_test_liveness(ws));
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    let (kept, suppressed) = allow.apply(findings);
    Report {
        findings: kept,
        suppressed,
        files_checked: ws.files.len(),
    }
}

/// Walks the workspace at `root`, loads the policy files, and runs
/// every rule.
///
/// # Errors
///
/// A human-readable message on I/O failure or a malformed policy file
/// (a malformed policy is a hard error, not a finding: it must never
/// silently allow anything).
pub fn run_workspace(root: &Path, options: &Options) -> Result<Report, String> {
    let ws = discover(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    if ws.files.is_empty() {
        return Err(format!(
            "no Rust files found under {} — wrong --root?",
            root.display()
        ));
    }
    let registry = match &options.registry {
        Some(r) => r.clone(),
        None => load_or_default(&root.join(REGISTRY_PATH), Registry::parse)?,
    };
    let allow = match &options.allowlist {
        Some(a) => a.clone(),
        None => load_or_default(&root.join(ALLOWLIST_PATH), Allowlist::parse)?,
    };
    Ok(run_rules(&ws, &registry, &allow))
}

fn load_or_default<T: Default>(
    path: &Path,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<T, String> {
    if !path.exists() {
        return Ok(T::default());
    }
    let src = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&src)
}
