//! Workspace discovery: which `.rs` files the lint walks, and what
//! role each plays.
//!
//! The walk is path-convention driven (the same conventions `cargo`
//! uses) rather than `Cargo.toml`-driven, so the lint sees every Rust
//! file in the tree — including one a manifest forgot to register,
//! which is itself the PR-7 bug class the `test-liveness` rule exists
//! to catch.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok};

/// Where a file sits in its crate, which decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library/binary source under `src/`.
    Src,
    /// Integration tests under `tests/`.
    Test,
    /// Benchmarks under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
}

/// One lexed workspace file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// The owning crate (directory name under `crates/` or `shims/`,
    /// or `safeweb` for the facade crate at the root).
    pub crate_name: String,
    /// The file's role.
    pub kind: FileKind,
    /// Whether this is a crate root (`src/lib.rs`).
    pub is_crate_root: bool,
    /// The code token stream (comments and whitespace dropped).
    pub tokens: Vec<Tok>,
}

impl SourceFile {
    /// Builds a file from in-memory source — the constructor the
    /// fixture-corpus tests use.
    pub fn from_source(rel: &str, crate_name: &str, kind: FileKind, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            is_crate_root: rel.ends_with("src/lib.rs"),
            tokens: lex(src),
        }
    }
}

/// The lexed workspace.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Every discovered file.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Wraps in-memory files (for tests).
    pub fn from_files(files: Vec<SourceFile>) -> Workspace {
        Workspace { files }
    }
}

/// Walks the workspace rooted at `root` and lexes every `.rs` file.
///
/// Covered: the facade crate (`src/`, `tests/`, `examples/`), every
/// crate under `crates/*` and every shim under `shims/*` (their
/// `src/`, `tests/`, `benches/`, `examples/`). Skipped: `target/`,
/// and any `fixtures/` directory — the lint's own seeded-violation
/// corpus must not fail the tree it tests.
///
/// # Errors
///
/// Propagates I/O errors other than the roots simply not existing.
pub fn discover(root: &Path) -> io::Result<Workspace> {
    let mut files = Vec::new();
    for dir in ["src", "tests", "examples"] {
        collect(root, &root.join(dir), "safeweb", kind_of(dir), &mut files)?;
    }
    for family in ["crates", "shims"] {
        let base = root.join(family);
        if !base.is_dir() {
            continue;
        }
        let mut crates: Vec<PathBuf> = fs::read_dir(&base)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for krate in crates {
            let name = krate
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            for dir in ["src", "tests", "benches", "examples"] {
                collect(root, &krate.join(dir), &name, kind_of(dir), &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(Workspace { files })
}

fn kind_of(dir: &str) -> FileKind {
    match dir {
        "tests" => FileKind::Test,
        "benches" => FileKind::Bench,
        "examples" => FileKind::Example,
        _ => FileKind::Src,
    }
}

fn collect(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    kind: FileKind,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        let name = name.unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect(root, &path, crate_name, kind, out)?;
        } else if name.ends_with(".rs") {
            let src = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                is_crate_root: rel.ends_with("src/lib.rs"),
                rel,
                crate_name: crate_name.to_string(),
                kind,
                tokens: lex(&src),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_this_workspace() {
        // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let ws = discover(root).expect("walk");
        let rels: Vec<&str> = ws.files.iter().map(|f| f.rel.as_str()).collect();
        assert!(rels.contains(&"crates/lint/src/workspace.rs"));
        assert!(rels.contains(&"src/lib.rs"));
        assert!(rels.contains(&"shims/proptest/src/lib.rs"));
        assert!(
            !rels.iter().any(|r| r.contains("/fixtures/")),
            "the seeded-violation corpus must not be walked: {rels:?}"
        );
        let root_file = ws.files.iter().find(|f| f.rel == "src/lib.rs").unwrap();
        assert!(root_file.is_crate_root);
        assert_eq!(root_file.crate_name, "safeweb");
        let test_file = ws
            .files
            .iter()
            .find(|f| f.rel == "tests/end_to_end.rs")
            .unwrap();
        assert_eq!(test_file.kind, FileKind::Test);
    }
}
