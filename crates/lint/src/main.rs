//! `safeweb-lint` — CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p lint --release -- --workspace
//! cargo run -p lint --release -- --workspace --json lint-report.json
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or policy-file error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use safeweb_lint::{run_workspace, Options};

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let mut workspace = false;
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    if !workspace {
        return usage("pass --workspace to lint the tree");
    }

    // `cargo run -p lint` runs with the invoker's cwd; find the
    // workspace root by walking up to the directory holding the
    // top-level Cargo.toml with a [workspace] table.
    let root = find_workspace_root(&root);
    let report = match run_workspace(&root, &Options::default()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("safeweb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json {
        if let Err(e) = fs::write(&path, report.to_json()) {
            eprintln!("safeweb-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "safeweb-lint: {} files, {} findings, {} allowlisted",
        report.files_checked,
        report.findings.len(),
        report.suppressed.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`; falls back to `start` so explicit `--root` always
/// works.
fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.canonicalize().unwrap_or_else(|_| start.to_path_buf());
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent.to_path_buf(),
            None => return start.to_path_buf(),
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("safeweb-lint: {message}\n{HELP}");
    ExitCode::from(2)
}

const HELP: &str = "\
safeweb-lint: machine-checks the workspace IFC security invariants.

USAGE:
    safeweb-lint --workspace [--root DIR] [--json PATH]

OPTIONS:
    --workspace    lint every crate, shim, test and example in the tree
    --root DIR     workspace root (default: walk up from the cwd)
    --json PATH    also write the findings report as JSON

Rules: unsafe-confinement, declassify-registry, query-hygiene,
lock-order, test-liveness. Exemptions: lint.allow.toml (justification
required); declassification registry: DECLASSIFY.toml.
";
