//! Findings, the per-rule allowlist, and the JSON report.

use std::fmt;

use crate::toml;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (`unsafe-confinement`, …).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line, or 0 for whole-file findings.
    pub line: u32,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.path, self.line, self.rule, self.message
            )
        } else {
            write!(f, "{}: [{}] {}", self.path, self.rule, self.message)
        }
    }
}

/// One `[[allow]]` entry from `lint.allow.toml`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// The rule being allowlisted.
    pub rule: String,
    /// The exact workspace-relative path the exemption covers.
    pub path: String,
    /// Why this is acceptable — must be non-empty; reviewed in PRs.
    pub justification: String,
    /// Line of the entry in the allowlist file (diagnostics).
    pub file_line: u32,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses `lint.allow.toml` text.
    ///
    /// # Errors
    ///
    /// A human-readable message if the file is malformed or an entry
    /// is missing its rule, path, or a non-empty justification.
    pub fn parse(src: &str) -> Result<Allowlist, String> {
        let entries = toml::parse(src).map_err(|e| format!("lint.allow.toml: {e}"))?;
        let mut out = Vec::new();
        for entry in entries {
            if entry.header != "allow" {
                return Err(format!(
                    "lint.allow.toml line {}: unexpected [[{}]] (only [[allow]] is valid)",
                    entry.line, entry.header
                ));
            }
            let field = |k: &str| {
                entry.str(k).map(str::to_string).ok_or_else(|| {
                    format!(
                        "lint.allow.toml line {}: [[allow]] entry missing string `{k}`",
                        entry.line
                    )
                })
            };
            let justification = field("justification")?;
            if justification.trim().len() < 10 {
                return Err(format!(
                    "lint.allow.toml line {}: justification must be a written sentence, \
                     not {justification:?}",
                    entry.line
                ));
            }
            out.push(AllowEntry {
                rule: field("rule")?,
                path: field("path")?,
                justification,
                file_line: entry.line,
            });
        }
        Ok(Allowlist { entries: out })
    }

    /// Splits `findings` into kept and suppressed, and appends a
    /// finding for every entry that suppressed nothing — a stale
    /// exemption is itself a violation, so the allowlist can only
    /// shrink the audit surface, never silently rot.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut hits = vec![0usize; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        for finding in findings {
            let slot = self
                .entries
                .iter()
                .position(|e| e.rule == finding.rule && e.path == finding.path);
            match slot {
                Some(i) => {
                    hits[i] += 1;
                    suppressed.push(finding);
                }
                None => kept.push(finding),
            }
        }
        for (entry, hits) in self.entries.iter().zip(&hits) {
            if *hits == 0 {
                kept.push(Finding {
                    rule: "allowlist",
                    path: "lint.allow.toml".to_string(),
                    line: entry.file_line,
                    message: format!(
                        "stale entry: rule `{}` no longer fires on `{}`; delete the exemption",
                        entry.rule, entry.path
                    ),
                });
            }
        }
        (kept, suppressed)
    }
}

/// The complete outcome of a lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings that survived the allowlist (CI fails when non-empty).
    pub findings: Vec<Finding>,
    /// Findings suppressed by allowlist entries.
    pub suppressed: Vec<Finding>,
    /// Number of files walked.
    pub files_checked: usize,
}

impl Report {
    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the machine-readable report CI uploads as an artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_checked\": {},\n", self.files_checked));
        out.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        for (key, list) in [
            ("findings", &self.findings),
            ("suppressed", &self.suppressed),
        ] {
            out.push_str(&format!("  \"{key}\": [\n"));
            for (i, f) in list.iter().enumerate() {
                let comma = if i + 1 == list.len() { "" } else { "," };
                out.push_str(&format!(
                    "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}{comma}\n",
                    json_str(f.rule),
                    json_str(&f.path),
                    f.line,
                    json_str(&f.message)
                ));
            }
            let comma = if key == "findings" { "," } else { "" };
            out.push_str(&format!("  ]{comma}\n"));
        }
        out.push_str("}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            message: "m".to_string(),
        }
    }

    #[test]
    fn allowlist_requires_written_justification() {
        let src = "[[allow]]\nrule = \"query-hygiene\"\npath = \"a.rs\"\njustification = \"no\"";
        assert!(Allowlist::parse(src).is_err());
        let src = "[[allow]]\nrule = \"query-hygiene\"\npath = \"a.rs\"\n\
                   justification = \"deliberate negative control exercised by tests\"";
        assert_eq!(Allowlist::parse(src).unwrap().entries.len(), 1);
    }

    #[test]
    fn apply_suppresses_matches_and_flags_stale_entries() {
        let allow = Allowlist::parse(
            "[[allow]]\nrule = \"r1\"\npath = \"a.rs\"\njustification = \"covered by fixture tests\"\n\
             [[allow]]\nrule = \"r1\"\npath = \"gone.rs\"\njustification = \"covered by fixture tests\"",
        )
        .unwrap();
        let (kept, suppressed) = allow.apply(vec![finding("r1", "a.rs"), finding("r2", "a.rs")]);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(kept.len(), 2, "r2 kept + stale entry flagged: {kept:?}");
        assert!(kept.iter().any(|f| f.rule == "allowlist"));
    }

    #[test]
    fn json_report_escapes() {
        let mut report = Report::default();
        report.findings.push(Finding {
            rule: "r",
            path: "a\"b.rs".to_string(),
            line: 3,
            message: "x\ny".to_string(),
        });
        let json = report.to_json();
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("x\\ny"));
    }
}
