//! Rule `unsafe-confinement`: `unsafe` stays inside `reactor::sys`.
//!
//! The workspace's safety story (ARCHITECTURE.md) is that exactly one
//! module — the raw epoll/eventfd bindings in
//! `crates/reactor/src/sys.rs` — contains `unsafe` code, and everything
//! above it speaks safe wrappers. This rule makes that story
//! machine-checked:
//!
//! * an `unsafe` token anywhere else in the workspace is a finding
//!   (lexer-level, so a quoted or commented `unsafe` does not count);
//! * every crate root must carry `#![forbid(unsafe_code)]`, so the
//!   compiler enforces the same invariant even when the lint is not
//!   running — except the reactor root, which must carry
//!   `#![deny(unsafe_code)]` (its `sys` module opts back in with a
//!   scoped `allow`, which `forbid` would make impossible).

use crate::diag::Finding;
use crate::lexer::Tok;
use crate::workspace::Workspace;

const RULE: &str = "unsafe-confinement";

/// The one module allowed to contain `unsafe` tokens.
pub const UNSAFE_SANCTUARY: &str = "crates/reactor/src/sys.rs";

/// The crate root that cannot `forbid` (its child module needs a
/// scoped `allow`) and must `deny` instead.
pub const DENY_ROOT: &str = "crates/reactor/src/lib.rs";

/// Runs the rule over the workspace.
pub fn check_unsafe_confinement(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if file.rel != UNSAFE_SANCTUARY {
            for tok in &file.tokens {
                if tok.is_ident("unsafe") {
                    findings.push(Finding {
                        rule: RULE,
                        path: file.rel.clone(),
                        line: tok.line,
                        message: format!(
                            "`unsafe` outside the sanctioned module {UNSAFE_SANCTUARY}; \
                             wrap the operation in a safe `reactor::sys` API instead"
                        ),
                    });
                }
            }
        }
        if file.is_crate_root {
            let required = if file.rel == DENY_ROOT {
                "deny"
            } else {
                "forbid"
            };
            if !has_inner_unsafe_gate(&file.tokens, required) {
                findings.push(Finding {
                    rule: RULE,
                    path: file.rel.clone(),
                    line: 1,
                    message: format!(
                        "crate root is missing `#![{required}(unsafe_code)]`; every root \
                         must compiler-enforce the unsafe confinement invariant"
                    ),
                });
            }
        }
    }
    findings
}

/// Whether the stream contains `#![<gate>(unsafe_code)]`.
fn has_inner_unsafe_gate(tokens: &[Tok], gate: &str) -> bool {
    tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(gate)
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileKind, SourceFile, Workspace};

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace::from_files(
            files
                .into_iter()
                .map(|(rel, src)| SourceFile::from_source(rel, "x", FileKind::Src, src))
                .collect(),
        )
    }

    #[test]
    fn flags_unsafe_outside_sanctuary_only() {
        let findings = check_unsafe_confinement(&ws(vec![
            ("crates/x/src/a.rs", "fn f() { let p = 1; }"),
            (
                "crates/x/src/b.rs",
                "fn f() { let v = vec![0u8]; let _ = &v; } fn g() { unsafe { } }",
            ),
            ("crates/reactor/src/sys.rs", "pub fn e() { unsafe { } }"),
        ]));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, "crates/x/src/b.rs");
    }

    #[test]
    fn quoted_and_commented_unsafe_do_not_count() {
        let findings = check_unsafe_confinement(&ws(vec![(
            "crates/x/src/a.rs",
            "// unsafe here\n/* unsafe */ fn f() { let s = \"unsafe\"; let _ = s; }",
        )]));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn crate_roots_must_carry_the_gate() {
        let findings = check_unsafe_confinement(&ws(vec![
            ("crates/x/src/lib.rs", "//! docs\npub fn f() {}"),
            (
                "crates/y/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {}",
            ),
        ]));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, "crates/x/src/lib.rs");
    }

    #[test]
    fn reactor_root_requires_deny_not_forbid() {
        let findings = check_unsafe_confinement(&ws(vec![(
            "crates/reactor/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod sys;",
        )]));
        assert_eq!(
            findings.len(),
            1,
            "forbid on the reactor root would not compile"
        );
        let findings = check_unsafe_confinement(&ws(vec![(
            "crates/reactor/src/lib.rs",
            "#![deny(unsafe_code)]\npub mod sys;",
        )]));
        assert!(findings.is_empty());
    }
}
