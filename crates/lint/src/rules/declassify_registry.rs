//! Rule `declassify-registry`: every declassification escape hatch is
//! enumerated in a checked-in registry.
//!
//! `safeq`'s §"Audited declassification" story is that a grep plus the
//! runtime audit log enumerates every place raw user input can shape a
//! query. This rule replaces the grep with a machine check: every call
//! site of
//!
//! * `TrustedLiteral::declassified(…)`,
//! * `Privilege::declassify(…)`,
//! * the taint-clearing sanitiser constructors `.sanitize_html()` /
//!   `.sanitize_sql()`
//!
//! must appear in `DECLASSIFY.toml`, keyed by path + marker with an
//! exact site count and a written justification. Adding a declassify
//! site to a registered file without bumping its count fails CI, so
//! the audit surface is closed under review; a registry entry whose
//! file no longer declassifies is flagged as stale.

use std::collections::BTreeMap;

use crate::diag::Finding;
use crate::lexer::Tok;
use crate::toml;
use crate::workspace::Workspace;

const RULE: &str = "declassify-registry";

/// The audited markers, as they appear in `DECLASSIFY.toml`.
pub const MARKERS: [&str; 4] = [
    "TrustedLiteral::declassified",
    "Privilege::declassify",
    "sanitize_html",
    "sanitize_sql",
];

/// One `[[site]]` entry of `DECLASSIFY.toml`.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// Workspace-relative path of the declassifying file.
    pub path: String,
    /// Which marker (one of [`MARKERS`]).
    pub marker: String,
    /// Exact number of call sites of that marker in that file.
    pub count: i64,
    /// Why these declassifications are acceptable.
    pub justification: String,
    /// Line of the entry in the registry file.
    pub file_line: u32,
}

/// The parsed `DECLASSIFY.toml`.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Entries in file order.
    pub entries: Vec<RegistryEntry>,
}

impl Registry {
    /// Parses registry text.
    ///
    /// # Errors
    ///
    /// A message naming the malformed entry: the registry gates CI, so
    /// a typo must fail loudly.
    pub fn parse(src: &str) -> Result<Registry, String> {
        let raw = toml::parse(src).map_err(|e| format!("DECLASSIFY.toml: {e}"))?;
        let mut entries = Vec::new();
        for entry in raw {
            if entry.header != "site" {
                return Err(format!(
                    "DECLASSIFY.toml line {}: unexpected [[{}]] (only [[site]] is valid)",
                    entry.line, entry.header
                ));
            }
            let field = |k: &str| {
                entry.str(k).map(str::to_string).ok_or_else(|| {
                    format!(
                        "DECLASSIFY.toml line {}: [[site]] missing string `{k}`",
                        entry.line
                    )
                })
            };
            let marker = field("marker")?;
            if !MARKERS.contains(&marker.as_str()) {
                return Err(format!(
                    "DECLASSIFY.toml line {}: unknown marker {marker:?} (expected one of {MARKERS:?})",
                    entry.line
                ));
            }
            let justification = field("justification")?;
            if justification.trim().len() < 10 {
                return Err(format!(
                    "DECLASSIFY.toml line {}: justification must be a written sentence",
                    entry.line
                ));
            }
            let count = entry
                .get("count")
                .and_then(toml::Value::as_int)
                .ok_or_else(|| {
                    format!(
                        "DECLASSIFY.toml line {}: [[site]] missing integer `count`",
                        entry.line
                    )
                })?;
            entries.push(RegistryEntry {
                path: field("path")?,
                marker,
                count,
                justification,
                file_line: entry.line,
            });
        }
        Ok(Registry { entries })
    }
}

/// Runs the rule: scans every file for marker call sites and
/// reconciles them against the registry.
pub fn check_declassify_registry(ws: &Workspace, registry: &Registry) -> Vec<Finding> {
    // (path, marker) -> lines of call sites found.
    let mut sites: BTreeMap<(String, String), Vec<u32>> = BTreeMap::new();
    for file in &ws.files {
        for (marker, line) in marker_sites(&file.tokens) {
            sites
                .entry((file.rel.clone(), marker.to_string()))
                .or_default()
                .push(line);
        }
    }

    let mut findings = Vec::new();
    for ((path, marker), lines) in &sites {
        let entry = registry
            .entries
            .iter()
            .find(|e| &e.path == path && &e.marker == marker);
        match entry {
            None => {
                for line in lines {
                    findings.push(Finding {
                        rule: RULE,
                        path: path.clone(),
                        line: *line,
                        message: format!(
                            "unregistered `{marker}` call site; add a [[site]] entry with a \
                             justification to DECLASSIFY.toml"
                        ),
                    });
                }
            }
            Some(entry) if entry.count != lines.len() as i64 => {
                findings.push(Finding {
                    rule: RULE,
                    path: path.clone(),
                    line: lines[0],
                    message: format!(
                        "`{marker}` site count drifted: registry says {}, found {} (lines {:?}); \
                         re-audit and update DECLASSIFY.toml",
                        entry.count,
                        lines.len(),
                        lines
                    ),
                });
            }
            Some(_) => {}
        }
    }
    for entry in &registry.entries {
        if !sites.contains_key(&(entry.path.clone(), entry.marker.clone())) {
            findings.push(Finding {
                rule: RULE,
                path: "DECLASSIFY.toml".to_string(),
                line: entry.file_line,
                message: format!(
                    "stale registry entry: `{}` no longer calls `{}`; delete the entry",
                    entry.path, entry.marker
                ),
            });
        }
    }
    findings
}

/// Scans a token stream for marker call sites.
///
/// Qualified markers match the token triple `Type` `::` `method`;
/// sanitiser markers match `.method(` so the `fn sanitize_html`
/// definitions in `safeweb-taint` itself do not count as call sites.
fn marker_sites(tokens: &[Tok]) -> Vec<(&'static str, u32)> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        let prev = |n: usize| i.checked_sub(n).map(|j| &tokens[j]);
        if tok.is_ident("declassified")
            && prev(1).is_some_and(|t| t.is_punct(':'))
            && prev(2).is_some_and(|t| t.is_punct(':'))
            && prev(3).is_some_and(|t| t.is_ident("TrustedLiteral"))
        {
            out.push(("TrustedLiteral::declassified", tok.line));
        }
        if tok.is_ident("declassify")
            && prev(1).is_some_and(|t| t.is_punct(':'))
            && prev(2).is_some_and(|t| t.is_punct(':'))
            && prev(3).is_some_and(|t| t.is_ident("Privilege"))
        {
            out.push(("Privilege::declassify", tok.line));
        }
        for marker in ["sanitize_html", "sanitize_sql"] {
            if tok.is_ident(marker)
                && prev(1).is_some_and(|t| t.is_punct('.'))
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                out.push((
                    if marker == "sanitize_html" {
                        "sanitize_html"
                    } else {
                        "sanitize_sql"
                    },
                    tok.line,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileKind, SourceFile, Workspace};

    fn ws(rel: &str, src: &str) -> Workspace {
        Workspace::from_files(vec![SourceFile::from_source(rel, "x", FileKind::Src, src)])
    }

    fn registry(src: &str) -> Registry {
        Registry::parse(src).unwrap()
    }

    const CALLS: &str = r#"
fn f(s: &SStr) {
    let a = TrustedLiteral::declassified(s, "why");
    let b = s.sanitize_html();
}
"#;

    #[test]
    fn unregistered_site_is_flagged() {
        let findings = check_declassify_registry(&ws("a.rs", CALLS), &Registry::default());
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("unregistered"));
    }

    #[test]
    fn registered_sites_with_exact_count_pass() {
        let reg = registry(
            "[[site]]\npath = \"a.rs\"\nmarker = \"TrustedLiteral::declassified\"\ncount = 1\n\
             justification = \"admin console free-form query, reviewed\"\n\
             [[site]]\npath = \"a.rs\"\nmarker = \"sanitize_html\"\ncount = 1\n\
             justification = \"template escaping sanitiser call\"",
        );
        let findings = check_declassify_registry(&ws("a.rs", CALLS), &reg);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn count_drift_and_stale_entries_are_flagged() {
        let reg = registry(
            "[[site]]\npath = \"a.rs\"\nmarker = \"TrustedLiteral::declassified\"\ncount = 2\n\
             justification = \"admin console free-form query, reviewed\"\n\
             [[site]]\npath = \"gone.rs\"\nmarker = \"sanitize_sql\"\ncount = 1\n\
             justification = \"file was deleted last PR, entry remains\"",
        );
        let src = "fn f(s: &SStr) { let a = TrustedLiteral::declassified(s, \"why\"); }";
        let findings = check_declassify_registry(&ws("a.rs", src), &reg);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("drifted")));
        assert!(findings.iter().any(|f| f.message.contains("stale")));
    }

    #[test]
    fn definitions_and_docs_are_not_call_sites() {
        let src = r#"
/// Calls [`TrustedLiteral::declassified`] eventually.
impl SStr {
    pub fn sanitize_html(&self) -> SStr { todo!() }
    pub fn declassified(s: &SStr, justification: &'static str) -> T { todo!() }
}
"#;
        let findings = check_declassify_registry(&ws("a.rs", src), &Registry::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn registry_rejects_unknown_marker_and_thin_justification() {
        assert!(Registry::parse(
            "[[site]]\npath = \"a.rs\"\nmarker = \"nope\"\ncount = 1\njustification = \"long enough words\""
        )
        .is_err());
        assert!(Registry::parse(
            "[[site]]\npath = \"a.rs\"\nmarker = \"sanitize_sql\"\ncount = 1\njustification = \"ok\""
        )
        .is_err());
    }
}
