//! Rule `test-liveness`: a test that cannot run is a failing test.
//!
//! PR 7 shipped two `proptest!` suites whose functions silently never
//! ran: the in-repo proptest shim expands `proptest!` functions
//! verbatim, so a function without an explicit `#[test]` meta inside
//! the macro block compiles to a plain, never-invoked function. This
//! rule machine-checks the two halves of that bug class:
//!
//! * **every `fn` inside a `proptest! { … }` block carries `#[test]`**
//!   among the metas written before it in the macro body;
//! * **every `*_props.rs` file and every file under a `tests/`
//!   directory contains at least one `#[test]`** — an integration-test
//!   file with zero live tests asserts nothing no matter how much it
//!   sets up.

use crate::diag::Finding;
use crate::lexer::Tok;
use crate::rules::{matching, matching_brace};
use crate::workspace::Workspace;

const RULE: &str = "test-liveness";

/// Runs the rule over the workspace.
pub fn check_test_liveness(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        check_proptest_blocks(&file.tokens, &file.rel, &mut findings);
        let wants_tests = file.rel.ends_with("_props.rs")
            || file.rel.contains("/tests/")
            || file.rel.starts_with("tests/");
        if wants_tests && !has_live_test(&file.tokens) {
            findings.push(Finding {
                rule: RULE,
                path: file.rel.clone(),
                line: 0,
                message: "test file contains no live `#[test]`: nothing here ever runs \
                          (the PR-7 bug class); add `#[test]` metas or delete the file"
                    .to_string(),
            });
        }
    }
    findings
}

/// Whether the stream contains a `#[test]` attribute.
fn has_live_test(tokens: &[Tok]) -> bool {
    tokens.windows(4).any(|w| {
        w[0].is_punct('#') && w[1].is_punct('[') && w[2].is_ident("test") && w[3].is_punct(']')
    })
}

/// Checks every `proptest! { … }` block: each `fn` at the macro's top
/// level must have a `#[test]` meta between the previous item and
/// itself.
fn check_proptest_blocks(tokens: &[Tok], rel: &str, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("proptest")
            && tokens[i + 1].is_punct('!')
            && tokens[i + 2].is_punct('{')
        {
            let open = i + 2;
            let close = matching_brace(tokens, open);
            scan_block(tokens, open, close, rel, findings);
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

fn scan_block(tokens: &[Tok], open: usize, close: usize, rel: &str, findings: &mut Vec<Finding>) {
    let mut pending_test = false;
    let mut j = open + 1;
    while j < close {
        let tok = &tokens[j];
        // An attribute: remember whether it is #[test].
        if tok.is_punct('#') && tokens.get(j + 1).is_some_and(|t| t.is_punct('[')) {
            let end = matching(tokens, j + 1, '[', ']');
            if tokens.get(j + 2).is_some_and(|t| t.is_ident("test")) && end == j + 3 {
                pending_test = true;
            }
            j = end + 1;
            continue;
        }
        if tok.is_ident("fn") {
            let name = tokens
                .get(j + 1)
                .map(|t| t.text.clone())
                .unwrap_or_default();
            if !pending_test {
                findings.push(Finding {
                    rule: RULE,
                    path: rel.to_string(),
                    line: tok.line,
                    message: format!(
                        "`fn {name}` inside `proptest!` has no `#[test]` meta: the shim \
                         expands it to a plain function that never runs"
                    ),
                });
            }
            pending_test = false;
            // Skip to the end of this function's body so nested fns
            // and braces inside it are not mistaken for block items.
            let mut k = j + 1;
            while k < close {
                if tokens[k].is_punct('(') {
                    k = matching(tokens, k, '(', ')') + 1;
                    continue;
                }
                if tokens[k].is_punct('{') {
                    k = matching_brace(tokens, k);
                    break;
                }
                k += 1;
            }
            j = k + 1;
            continue;
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileKind, SourceFile, Workspace};

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let kind = if rel.contains("tests/") {
            FileKind::Test
        } else {
            FileKind::Src
        };
        check_test_liveness(&Workspace::from_files(vec![SourceFile::from_source(
            rel, "x", kind, src,
        )]))
    }

    const LIVE: &str = r#"
proptest! {
    /// Doc comment.
    #[test]
    fn round_trips(s in "\\PC{0,16}") { prop_assert!(true); }

    #[test]
    fn second(x in 0..10i64) { prop_assert!(x < 10); }
}
"#;

    const DEAD: &str = r#"
proptest! {
    #[test]
    fn alive(x in 0..10i64) { prop_assert!(true); }

    fn dead(s in "\\PC{0,16}") { prop_assert!(true); }
}
"#;

    #[test]
    fn proptest_fns_with_metas_pass() {
        assert!(run("crates/x/tests/a_props.rs", LIVE).is_empty());
    }

    #[test]
    fn proptest_fn_without_test_meta_is_flagged() {
        let findings = run("crates/x/tests/a_props.rs", DEAD);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("fn dead"));
    }

    #[test]
    fn other_metas_do_not_satisfy_the_requirement() {
        let src = r#"
proptest! {
    #[allow(dead_code)]
    fn nope(x in 0..3i64) { prop_assert!(true); }
}
#[test]
fn keeps_file_live() {}
"#;
        let findings = run("crates/x/tests/t.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("fn nope"));
    }

    #[test]
    fn props_file_with_no_tests_at_all_is_flagged() {
        let src = "fn helper() {} struct S;";
        let findings = run("crates/x/tests/setup_props.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no live"));
    }

    #[test]
    fn non_test_src_file_needs_no_tests() {
        assert!(run("crates/x/src/lib.rs", "pub fn f() {}").is_empty());
    }

    #[test]
    fn plain_test_fn_keeps_a_tests_file_live() {
        assert!(run("tests/e2e.rs", "#[test]\nfn works() {}").is_empty());
    }
}
