//! Rule `telemetry-hygiene`: tainted or labelled values never become
//! telemetry.
//!
//! The observability layer (`safeweb-obs`) is deliberately outside the
//! label lattice: metric snapshots and trace rings are readable by any
//! admin, so anything recorded there is *implicitly declassified*. The
//! contract (enforced by convention at every instrumentation site, and
//! machine-checked here) is that telemetry carries **structure only** —
//! counts, durations, sequence numbers, interned label-set ids, static
//! route/unit names. Document fields, event payloads and
//! principal-derived strings must never reach a record sink, or the ops
//! page becomes a declassification side channel.
//!
//! Same-function, token-level flow check (the `query-hygiene` shape):
//!
//! 1. an identifier is **payload-tainted** when its `let` initializer
//!    reads a payload or principal accessor — `.attr(…)` /
//!    `.attributes()` (event payloads), `.body(…)` / `.body_str()`
//!    (document/request bytes), `.to_json_sstr()` (labelled document
//!    rendering), or `.username` (principal-derived) — or mentions an
//!    already-tainted identifier;
//! 2. a **telemetry sink** whose *name-position* argument contains a
//!    payload accessor or a tainted identifier is a finding.
//!
//! Sinks and the argument scanned: `record_span` (the span name, second
//! argument), `record_slow` (the task name, first argument), and the
//! metric-name (first) argument of the registry surface — `counter`,
//! `gauge`, `histogram`, `histogram_with`, `register_counter`,
//! `register_histogram`, `register_derived`.
//!
//! Numeric arguments (durations, counts, `labels().id().as_u32()`) are
//! structure by construction and not scanned. `format!` is *allowed* in
//! metric names — prefixed names like `format!("{prefix}.put_ns")` are
//! the registry idiom — unless the interpolation mentions a tainted
//! identifier or payload accessor.

use std::collections::HashSet;

use crate::diag::Finding;
use crate::lexer::{Tok, TokKind};
use crate::rules::{cfg_test_mask, fn_bodies, matching};
use crate::workspace::{FileKind, Workspace};

const RULE: &str = "telemetry-hygiene";

/// Sinks scanned at their first argument (task / metric name).
const FIRST_ARG_SINKS: [&str; 8] = [
    "record_slow",
    "counter",
    "gauge",
    "histogram",
    "histogram_with",
    "register_counter",
    "register_histogram",
    "register_derived",
];

/// Sinks scanned at their second argument (the span name).
const SECOND_ARG_SINKS: [&str; 1] = ["record_span"];

/// Payload / principal accessors: an expression touching one of these
/// yields data, not structure.
const PAYLOAD_ACCESSORS: [&str; 6] = [
    "attr",
    "attributes",
    "body",
    "body_str",
    "to_json_sstr",
    "username",
];

/// Runs the rule over every non-test file.
pub fn check_telemetry_hygiene(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if file.kind == FileKind::Test {
            continue;
        }
        let mask = cfg_test_mask(&file.tokens);
        for body in fn_bodies(&file.tokens) {
            if mask.get(body.open).copied().unwrap_or(false) {
                continue;
            }
            check_body(
                &file.tokens,
                body.open,
                body.close,
                &file.rel,
                &mut findings,
            );
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings.dedup();
    findings
}

fn check_body(tokens: &[Tok], open: usize, close: usize, rel: &str, findings: &mut Vec<Finding>) {
    let mut tainted: HashSet<String> = HashSet::new();
    let mut i = open + 1;
    while i < close {
        let tok = &tokens[i];
        // `let <pat> = <init> ;` — classify the initializer.
        if tok.is_ident("let") {
            let (name, init_start) = let_binding(tokens, i, close);
            let init_end = stmt_end(tokens, init_start, close);
            if let Some(name) = name {
                if is_payload_expr(&tokens[init_start..init_end], &tainted) {
                    tainted.insert(name);
                } else {
                    // A clean re-binding shadows any earlier taint.
                    tainted.remove(&name);
                }
            }
            i += 1;
            continue;
        }
        // Sink call?
        if tok.kind == TokKind::Ident && tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let name = tok.text.as_str();
            let is_def = i > 0 && tokens[i - 1].is_ident("fn");
            let first = FIRST_ARG_SINKS.contains(&name);
            let second = SECOND_ARG_SINKS.contains(&name);
            if !is_def && (first || second) {
                let args_close = matching(tokens, i + 1, '(', ')');
                let args = &tokens[i + 2..args_close];
                let scan = if second {
                    nth_argument(args, 1)
                } else {
                    nth_argument(args, 0)
                };
                if is_payload_expr(scan, &tainted) {
                    findings.push(Finding {
                        rule: RULE,
                        path: rel.to_string(),
                        line: tok.line,
                        message: format!(
                            "payload-derived value flows into telemetry sink `{name}`: \
                             metric and span names must be structural (static strings, \
                             route patterns, unit names) — never event attributes, \
                             document fields, or principal-derived strings"
                        ),
                    });
                }
                i = args_close + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Extracts the bound name of a `let` (first identifier of the
/// pattern, skipping `mut`) and the index just past the `=`.
fn let_binding(tokens: &[Tok], let_idx: usize, close: usize) -> (Option<String>, usize) {
    let mut name = None;
    let mut j = let_idx + 1;
    while j < close {
        let t = &tokens[j];
        if t.is_punct('=') && !tokens.get(j + 1).is_some_and(|n| n.is_punct('=')) {
            return (name, j + 1);
        }
        if t.is_punct(';') {
            return (None, j);
        }
        if name.is_none()
            && t.kind == TokKind::Ident
            && !matches!(t.text.as_str(), "mut" | "ref" | "Some" | "Ok" | "Err")
        {
            name = Some(t.text.clone());
        }
        j += 1;
    }
    (None, close)
}

/// Index of the `;` ending the statement starting at `from` (brace
/// depth respected so `let x = if c { a } else { b };` scans whole).
fn stmt_end(tokens: &[Tok], from: usize, close: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < close {
        let t = &tokens[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j;
        }
        j += 1;
    }
    close
}

/// Whether an expression's tokens reach payload data: a
/// `.accessor(`/`.accessor` read from [`PAYLOAD_ACCESSORS`], or an
/// already-tainted identifier.
fn is_payload_expr(tokens: &[Tok], tainted: &HashSet<String>) -> bool {
    for (j, t) in tokens.iter().enumerate() {
        // `format!("…{who}…")` captures by name inside the literal, so
        // interpolations count as uses of the interpolated binding.
        if t.kind == TokKind::Str
            && tainted.iter().any(|name| {
                t.text.contains(&format!("{{{name}}}")) || t.text.contains(&format!("{{{name}:"))
            })
        {
            return true;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        if tainted.contains(&t.text) {
            return true;
        }
        // Accessors only count as *reads* (`.attr(…)`, `.username`) so
        // a local named `body` or a struct field definition does not
        // trip the rule.
        if PAYLOAD_ACCESSORS.contains(&t.text.as_str()) && j > 0 && tokens[j - 1].is_punct('.') {
            return true;
        }
    }
    false
}

/// The tokens of the `n`-th (0-based) top-level argument.
fn nth_argument(args: &[Tok], n: usize) -> &[Tok] {
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut seen = 0usize;
    for (j, t) in args.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            if seen == n {
                return &args[start..j];
            }
            seen += 1;
            start = j + 1;
        }
    }
    if seen == n {
        &args[start..]
    } else {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        check_telemetry_hygiene(&Workspace::from_files(vec![SourceFile::from_source(
            "crates/x/src/a.rs",
            "x",
            FileKind::Src,
            src,
        )]))
    }

    #[test]
    fn event_attribute_in_span_name_is_flagged() {
        let src = r#"
fn f(event: &Event, start: u64, id: TraceId) {
    record_span("engine", event.attr("patient").unwrap_or(""), id, start, None);
}
"#;
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("record_span"));
    }

    #[test]
    fn tainted_let_flows_into_metric_name() {
        let src = r#"
fn f(user: &AuthenticatedUser, registry: &MetricsRegistry) {
    let who = user.username.clone();
    let c = registry.counter(&format!("web.requests.{who}"));
    c.inc();
}
"#;
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("counter"));
    }

    #[test]
    fn structural_names_and_prefixed_formats_pass() {
        let src = r#"
fn f(registry: &MetricsRegistry, prefix: &str, route: &str, id: TraceId, start: u64) {
    let c = registry.counter(&format!("{prefix}.accepted"));
    let h = registry.histogram("docstore.put_ns");
    record_span("frontend", route, id, start, Some(labels.id().as_u32()));
    record_slow("unit-name", dur, traces);
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn second_argument_only_is_scanned_for_spans() {
        // The numeric label-set id position may legitimately read from
        // the event; only the *name* slot is restricted.
        let src = r#"
fn f(event: &LabelledEvent, start: u64) {
    record_span("broker", event.topic(), event.trace_id(), start,
        Some(event.labels().id().as_u32()));
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn clean_rebinding_clears_taint() {
        let src = r#"
fn f(event: &Event, registry: &MetricsRegistry) {
    let name = event.attr("kind").unwrap_or("");
    let name = "static.metric";
    let c = registry.counter(name);
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn f(event: &Event, id: TraceId, start: u64) {
        record_span("x", event.attr("n").unwrap(), id, start, None);
    }
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn sink_definitions_are_not_calls() {
        let src = "pub fn record_span(component: &'static str, name: &str) { }";
        assert!(run(src).is_empty());
    }
}
