//! Rule `query-hygiene`: concatenated strings never become query
//! structure.
//!
//! The typed query surfaces (`TrustedLiteral`, `QuerySpec`,
//! `Selector::bind`) exist so that user input can only enter a query
//! as a bound parameter. The residual bug class is trusted code
//! *building* query text with `format!` or `+` and feeding it to a
//! structure-consuming sink — exactly the `/find_raw` negative control
//! in `safeweb-attack`. This rule catches that shape in non-test code
//! with a same-function, token-level flow check:
//!
//! 1. an identifier is **concat-tainted** when its `let` initializer
//!    invokes `format!` or applies `+` next to a string literal or an
//!    already-tainted identifier;
//! 2. a **sink** call whose relevant arguments contain `format!` or a
//!    concat-tainted identifier is a finding.
//!
//! Sinks: `parse_trusted(…)` and `select_spec(…)` (all arguments),
//! `Selector::parse(…)` (the untrusted-text parser — feeding it
//! *constructed* text is the SQLi shape), and the view-name (first)
//! argument of `records_by` / `create_view` / `query_view` /
//! `query_view_range` / `query_view_trusted` / `query_view_range_trusted`.
//!
//! The check is deliberately intra-function and token-level (no type
//! inference, no inter-procedural flow): it will not catch laundering
//! through a helper function, but it cannot misfire on code that never
//! mentions a sink — and the fixture corpus mutation-checks both
//! directions.

use std::collections::HashSet;

use crate::diag::Finding;
use crate::lexer::{Tok, TokKind};
use crate::rules::{cfg_test_mask, fn_bodies, matching};
use crate::workspace::{FileKind, Workspace};

const RULE: &str = "query-hygiene";

/// Sinks whose every argument must be concat-free.
const FULL_ARG_SINKS: [&str; 2] = ["parse_trusted", "select_spec"];

/// Sinks whose first (view-name / template) argument must be
/// concat-free.
const FIRST_ARG_SINKS: [&str; 6] = [
    "records_by",
    "create_view",
    "query_view",
    "query_view_range",
    "query_view_trusted",
    "query_view_range_trusted",
];

/// Runs the rule over every non-test file.
pub fn check_query_hygiene(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if file.kind == FileKind::Test {
            continue;
        }
        let mask = cfg_test_mask(&file.tokens);
        for body in fn_bodies(&file.tokens) {
            if mask.get(body.open).copied().unwrap_or(false) {
                continue;
            }
            check_body(
                &file.tokens,
                body.open,
                body.close,
                &file.rel,
                &mut findings,
            );
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings.dedup();
    findings
}

fn check_body(tokens: &[Tok], open: usize, close: usize, rel: &str, findings: &mut Vec<Finding>) {
    let mut tainted: HashSet<String> = HashSet::new();
    let mut i = open + 1;
    while i < close {
        let tok = &tokens[i];
        // `let <pat> = <init> ;` — classify the initializer.
        if tok.is_ident("let") {
            let (name, init_start) = let_binding(tokens, i, close);
            let init_end = stmt_end(tokens, init_start, close);
            if let Some(name) = name {
                if is_concat_expr(&tokens[init_start..init_end], &tainted) {
                    tainted.insert(name);
                } else {
                    // A clean re-binding shadows any earlier taint.
                    tainted.remove(&name);
                }
            }
            i += 1;
            continue;
        }
        // Sink call?
        if tok.kind == TokKind::Ident && tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            let name = tok.text.as_str();
            let is_def = i > 0 && tokens[i - 1].is_ident("fn");
            let full = FULL_ARG_SINKS.contains(&name);
            let first = FIRST_ARG_SINKS.contains(&name);
            let selector_parse = name == "parse"
                && i >= 3
                && tokens[i - 1].is_punct(':')
                && tokens[i - 2].is_punct(':')
                && tokens[i - 3].is_ident("Selector");
            if !is_def && (full || first || selector_parse) {
                let args_close = matching(tokens, i + 1, '(', ')');
                let args = &tokens[i + 2..args_close];
                let scan = if full || selector_parse {
                    args
                } else {
                    first_argument(args)
                };
                if is_concat_expr(scan, &tainted) {
                    let shown = if selector_parse {
                        "Selector::parse"
                    } else {
                        name
                    };
                    findings.push(Finding {
                        rule: RULE,
                        path: rel.to_string(),
                        line: tok.line,
                        message: format!(
                            "concatenated string flows into `{shown}`: query structure must \
                             come from a literal, a checked `TrustedLiteral`, or bound \
                             parameters — never `format!`/`+` output"
                        ),
                    });
                }
                i = args_close + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Extracts the bound name of a `let` (first identifier of the
/// pattern, skipping `mut`) and the index just past the `=`.
fn let_binding(tokens: &[Tok], let_idx: usize, close: usize) -> (Option<String>, usize) {
    let mut name = None;
    let mut j = let_idx + 1;
    while j < close {
        let t = &tokens[j];
        if t.is_punct('=') && !tokens.get(j + 1).is_some_and(|n| n.is_punct('=')) {
            return (name, j + 1);
        }
        if t.is_punct(';') {
            return (None, j);
        }
        if name.is_none()
            && t.kind == TokKind::Ident
            && !matches!(t.text.as_str(), "mut" | "ref" | "Some" | "Ok" | "Err")
        {
            name = Some(t.text.clone());
        }
        j += 1;
    }
    (None, close)
}

/// Index of the `;` ending the statement starting at `from` (brace
/// depth respected so `let x = if c { a } else { b };` scans whole).
fn stmt_end(tokens: &[Tok], from: usize, close: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < close {
        let t = &tokens[j];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j;
        }
        j += 1;
    }
    close
}

/// Whether an expression's tokens show string concatenation: a
/// `format!` invocation, a `+` adjacent to a string literal, or a
/// `+`/use of an already-tainted identifier.
fn is_concat_expr(tokens: &[Tok], tainted: &HashSet<String>) -> bool {
    for (j, t) in tokens.iter().enumerate() {
        if t.is_ident("format") && tokens.get(j + 1).is_some_and(|n| n.is_punct('!')) {
            return true;
        }
        if t.kind == TokKind::Ident && tainted.contains(&t.text) {
            return true;
        }
        if t.is_punct('+') {
            // `+=` and `a + b` on strings both count when a string
            // literal sits on either side; numeric addition does not.
            let prev_str = j > 0 && tokens[j - 1].kind == TokKind::Str;
            let next_str = tokens
                .get(j + 1)
                .map(|n| {
                    n.kind == TokKind::Str
                        || (n.is_punct('&')
                            && tokens.get(j + 2).is_some_and(|m| m.kind == TokKind::Str))
                })
                .unwrap_or(false);
            if prev_str || next_str {
                return true;
            }
        }
    }
    false
}

/// The tokens of the first top-level argument.
fn first_argument(args: &[Tok]) -> &[Tok] {
    let mut depth = 0i32;
    for (j, t) in args.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            return &args[..j];
        }
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        check_query_hygiene(&Workspace::from_files(vec![SourceFile::from_source(
            "crates/x/src/a.rs",
            "x",
            FileKind::Src,
            src,
        )]))
    }

    #[test]
    fn direct_format_into_sink_is_flagged() {
        let src = r#"fn f(user: &str) { let sel = parse_trusted(&format!("name = '{user}'")); }"#;
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("parse_trusted"));
    }

    #[test]
    fn tainted_let_flows_into_selector_parse() {
        let src = r#"
fn f(user: &str) {
    let source = format!("name = '{}'", user);
    let sel = Selector::parse(&source);
}
"#;
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("Selector::parse"));
    }

    #[test]
    fn plus_concatenation_taints() {
        let src = r#"
fn f(user: String) {
    let q = String::from("name = ") + &user;
    let q2 = "x = '".to_string() + &user + "'";
    db.records_by(&q2, key);
}
"#;
        // `String::from("…") + …` has a string literal inside the call,
        // not adjacent to `+` — but q2's initializer has `"…" + …`.
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("records_by"));
    }

    #[test]
    fn literal_view_names_and_bound_values_pass() {
        let src = r#"
fn f(ctx: &Ctx<'_>, mid: &SStr) {
    let docs = ctx.records_by("by_mid", mid);
    let spec = QuerySpec::table("accounts").filter(Filter::eq("name", name));
    let rows = db.select_spec(&spec);
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn value_argument_of_view_sinks_may_be_formatted() {
        // Only the view *name* is structure; the key is a value.
        let src = r#"fn f(ctx: &Ctx<'_>, i: u32) { let d = ctx.records_by("by_mid", &format!("m{i}")); }"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn f(user: &str) { let s = parse_trusted(&format!("x{user}")); }
}
"#;
        assert!(run(src).is_empty());
        let findings = check_query_hygiene(&Workspace::from_files(vec![SourceFile::from_source(
            "crates/x/tests/t.rs",
            "x",
            FileKind::Test,
            r#"fn f(u: &str) { let s = parse_trusted(&format!("x{u}")); }"#,
        )]));
        assert!(findings.is_empty());
    }

    #[test]
    fn sink_definitions_are_not_calls() {
        let src = "impl S { pub fn parse_trusted(text: &str) -> R { todo!() } }";
        assert!(run(src).is_empty());
    }
}
