//! Rule `lock-order`: the workspace lock-acquisition graph is acyclic.
//!
//! The ROADMAP carries "deadlock detection for backpressure cycles";
//! this rule is the static first step. Per function (non-test code),
//! it extracts `Mutex`/`RwLock` guard nesting at the token level:
//!
//! * an acquisition is `receiver.lock()` / `.read()` / `.write()` with
//!   no arguments — the `parking_lot`-shim and `std` guard APIs (the
//!   zero-argument requirement keeps `io::Read::read(&mut buf)` and
//!   `Write::write(&buf)` out);
//! * a guard bound by `let` is held until its enclosing block closes
//!   (or an explicit `drop(guard)`); a temporary guard is held to the
//!   end of its statement;
//! * acquiring `B` while `A` is held adds the edge `A → B` to the
//!   per-crate graph, with the file:line of the nested acquisition.
//!
//! Lock identity is `crate-name/receiver-field-name` — coarse, but
//! exactly the granularity at which this workspace names its locks
//! (`shards`, `tables`, `inner`, …), and coarse is the *conservative*
//! direction for deadlock detection. A cycle among two or more locks
//! fails the lint with one representative site per edge. Self-edges
//! (`inner → inner`) are ignored: two same-named fields on different
//! instances (e.g. `self.inner` and `other.inner` in a merge) are the
//! common false positive, while true self-deadlock is a dynamic
//! property this static step cannot decide.

use std::collections::BTreeMap;

use crate::diag::Finding;
use crate::lexer::{Tok, TokKind};
use crate::rules::{cfg_test_mask, fn_bodies};
use crate::workspace::{FileKind, Workspace};

const RULE: &str = "lock-order";

/// One lock-order edge: `from` was held while `to` was acquired.
#[derive(Debug, Clone)]
struct Edge {
    path: String,
    line: u32,
}

/// Runs the rule: builds the per-crate lock graph and reports cycles.
pub fn check_lock_order(ws: &Workspace) -> Vec<Finding> {
    // (crate, from, to) -> first site seen.
    let mut edges: BTreeMap<(String, String, String), Edge> = BTreeMap::new();
    for file in &ws.files {
        if file.kind == FileKind::Test {
            continue;
        }
        let mask = cfg_test_mask(&file.tokens);
        for body in fn_bodies(&file.tokens) {
            if mask.get(body.open).copied().unwrap_or(false) {
                continue;
            }
            collect_edges(
                &file.tokens,
                body.open,
                body.close,
                &file.crate_name,
                &file.rel,
                &mut edges,
            );
        }
    }

    // Group edges per crate and find cycles.
    let mut graphs: BTreeMap<&str, BTreeMap<&str, Vec<&str>>> = BTreeMap::new();
    for (krate, from, to) in edges.keys() {
        graphs
            .entry(krate)
            .or_default()
            .entry(from)
            .or_default()
            .push(to);
    }
    let mut findings = Vec::new();
    for (krate, graph) in &graphs {
        for cycle in cycles(graph) {
            // Report at the site of the first edge of the cycle.
            let key = (
                krate.to_string(),
                cycle[0].to_string(),
                cycle[1].to_string(),
            );
            let site = &edges[&key];
            let chain: Vec<String> = cycle
                .windows(2)
                .map(|w| {
                    let e = &edges[&(krate.to_string(), w[0].to_string(), w[1].to_string())];
                    format!("{} -> {} at {}:{}", w[0], w[1], e.path, e.line)
                })
                .collect();
            findings.push(Finding {
                rule: RULE,
                path: site.path.clone(),
                line: site.line,
                message: format!(
                    "lock-order cycle in crate `{krate}`: {}; acquire these locks in one \
                     global order (or break the nesting)",
                    chain.join(", ")
                ),
            });
        }
    }
    findings
}

/// A guard currently held while scanning a function body.
struct Guard {
    lock: String,
    /// The `let`-bound variable, for `drop(var)` release.
    var: Option<String>,
    /// Brace depth at acquisition; the guard dies when depth drops
    /// below this (let guards) or at the next same-depth `;` (temps).
    depth: usize,
    temp: bool,
}

fn collect_edges(
    tokens: &[Tok],
    open: usize,
    close: usize,
    krate: &str,
    rel: &str,
    edges: &mut BTreeMap<(String, String, String), Edge>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // The active `let` statement's bound variable, if any.
    let mut stmt_let_var: Option<String> = None;
    let mut stmt_is_let = false;
    let mut stmt_start = true;

    let mut i = open;
    while i <= close {
        let tok = &tokens[i];
        if tok.is_punct('{') {
            depth += 1;
            stmt_start = true;
            i += 1;
            continue;
        }
        if tok.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
            stmt_start = true;
            stmt_is_let = false;
            i += 1;
            continue;
        }
        if tok.is_punct(';') {
            guards.retain(|g| !(g.temp && g.depth == depth));
            stmt_start = true;
            stmt_is_let = false;
            stmt_let_var = None;
            i += 1;
            continue;
        }
        if stmt_start && tok.kind == TokKind::Ident {
            stmt_is_let = tok.is_ident("let");
            if stmt_is_let {
                stmt_let_var = tokens[i + 1..=close.min(i + 6)]
                    .iter()
                    .find(|t| {
                        t.kind == TokKind::Ident
                            && !matches!(t.text.as_str(), "mut" | "ref" | "Some" | "Ok" | "Err")
                    })
                    .map(|t| t.text.clone());
            }
            stmt_start = false;
        }
        // drop(guard_var) releases that guard early.
        if tok.is_ident("drop")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(var) = tokens.get(i + 2) {
                guards.retain(|g| g.var.as_deref() != Some(var.text.as_str()));
            }
        }
        // receiver.lock() / .read() / .write() with no arguments.
        if matches!(tok.text.as_str(), "lock" | "read" | "write")
            && tok.kind == TokKind::Ident
            && i >= 2
            && tokens[i - 1].is_punct('.')
            && tokens[i - 2].kind == TokKind::Ident
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(')'))
        {
            let lock = tokens[i - 2].text.clone();
            for held in &guards {
                if held.lock != lock {
                    edges
                        .entry((krate.to_string(), held.lock.clone(), lock.clone()))
                        .or_insert_with(|| Edge {
                            path: rel.to_string(),
                            line: tok.line,
                        });
                }
            }
            guards.push(Guard {
                lock,
                var: if stmt_is_let {
                    stmt_let_var.clone()
                } else {
                    None
                },
                depth,
                temp: !stmt_is_let,
            });
        }
        i += 1;
    }
}

/// Enumerates elementary cycles (as closed node walks
/// `[a, …, a]`) in a small adjacency map. Each cycle is reported once,
/// anchored at its lexicographically smallest node.
fn cycles<'a>(graph: &BTreeMap<&'a str, Vec<&'a str>>) -> Vec<Vec<&'a str>> {
    let mut out = Vec::new();
    for &start in graph.keys() {
        let mut stack = vec![start];
        dfs(graph, start, start, &mut stack, &mut out);
    }
    out
}

fn dfs<'a>(
    graph: &BTreeMap<&'a str, Vec<&'a str>>,
    start: &'a str,
    node: &'a str,
    stack: &mut Vec<&'a str>,
    out: &mut Vec<Vec<&'a str>>,
) {
    for &next in graph.get(node).into_iter().flatten() {
        if next == start && stack.len() > 1 {
            let mut cycle = stack.clone();
            cycle.push(start);
            out.push(cycle);
            continue;
        }
        // Anchor each cycle at its smallest node to avoid duplicates,
        // and keep walks elementary.
        if next <= start || stack.contains(&next) {
            continue;
        }
        stack.push(next);
        dfs(graph, start, next, stack, out);
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run(src: &str) -> Vec<Finding> {
        check_lock_order(&Workspace::from_files(vec![SourceFile::from_source(
            "crates/x/src/a.rs",
            "x",
            FileKind::Src,
            src,
        )]))
    }

    #[test]
    fn consistent_order_passes() {
        let src = r#"
fn a(&self) { let g1 = self.tables.lock(); let g2 = self.index.lock(); }
fn b(&self) { let g1 = self.tables.lock(); let g2 = self.index.lock(); }
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn opposite_orders_are_a_cycle() {
        let src = r#"
fn a(&self) { let g1 = self.tables.lock(); let g2 = self.index.lock(); }
fn b(&self) { let g2 = self.index.lock(); let g1 = self.tables.lock(); }
"#;
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("lock-order cycle"));
        assert!(findings[0].message.contains("index"));
        assert!(findings[0].message.contains("tables"));
    }

    #[test]
    fn block_scoping_releases_guards() {
        // The first guard is released by its block before the second
        // acquisition, so there is no nesting in `a`.
        let src = r#"
fn a(&self) { { let g1 = self.tables.lock(); } let g2 = self.index.lock(); }
fn b(&self) { let g2 = self.index.lock(); let g1 = self.tables.lock(); }
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn temporaries_release_at_statement_end() {
        let src = r#"
fn a(&self) { self.tables.lock().insert(1); let g2 = self.index.lock(); }
fn b(&self) { let g2 = self.index.lock(); let g1 = self.tables.lock(); }
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn explicit_drop_releases() {
        let src = r#"
fn a(&self) { let g1 = self.tables.lock(); drop(g1); let g2 = self.index.lock(); }
fn b(&self) { let g2 = self.index.lock(); let g1 = self.tables.lock(); }
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn three_lock_rotation_is_found() {
        let src = r#"
fn a(&self) { let g = self.a.lock(); let h = self.b.lock(); }
fn b(&self) { let g = self.b.lock(); let h = self.c.lock(); }
fn c(&self) { let g = self.c.lock(); let h = self.a.lock(); }
"#;
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn same_name_reacquisition_is_not_a_cycle() {
        let src =
            "fn m(&self, other: &Self) { let a = self.inner.lock(); let b = other.inner.lock(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn io_read_write_with_args_are_not_locks() {
        let src = r#"
fn a(&self, f: &mut File) { let n = f.read(&mut buf); w.write(&buf); let g = self.x.lock(); }
fn b(&self) { let g = self.x.lock(); let r = self.read.lock(); }
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn rwlock_read_write_participate() {
        let src = r#"
fn a(&self) { let g = self.map.read(); let h = self.log.lock(); }
fn b(&self) { let g = self.log.lock(); let h = self.map.write(); }
"#;
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn cross_crate_same_names_do_not_join() {
        let a = SourceFile::from_source(
            "crates/x/src/a.rs",
            "x",
            FileKind::Src,
            "fn a(&self) { let g = self.inner.lock(); let h = self.state.lock(); }",
        );
        let b = SourceFile::from_source(
            "crates/y/src/b.rs",
            "y",
            FileKind::Src,
            "fn b(&self) { let g = self.state.lock(); let h = self.inner.lock(); }",
        );
        let findings = check_lock_order(&Workspace::from_files(vec![a, b]));
        assert!(findings.is_empty(), "{findings:?}");
    }
}
