//! The six invariant checks, plus the token-walking helpers they
//! share. Each rule is a pure function from a lexed
//! [`Workspace`](crate::workspace::Workspace) (and optionally a policy
//! file) to [`Finding`](crate::diag::Finding)s; `tests/rule_fixtures.rs`
//! mutation-checks every rule against a seeded-violation corpus.

use crate::lexer::Tok;

pub mod declassify_registry;
pub mod lock_order;
pub mod query_hygiene;
pub mod telemetry_hygiene;
pub mod test_liveness;
pub mod unsafe_confinement;

pub use declassify_registry::{check_declassify_registry, Registry, RegistryEntry};
pub use lock_order::check_lock_order;
pub use query_hygiene::check_query_hygiene;
pub use telemetry_hygiene::check_telemetry_hygiene;
pub use test_liveness::check_test_liveness;
pub use unsafe_confinement::check_unsafe_confinement;

/// Marks every token inside a `#[cfg(test)] mod … { … }` block, so
/// rules that only apply to production code can skip test modules.
pub(crate) fn cfg_test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip past this attribute and any further attributes, then
            // expect `mod name {` and mask to the matching brace.
            let mut j = skip_attr(tokens, i);
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attr(tokens, j);
            }
            if j < tokens.len() && tokens[j].is_ident("pub") {
                j += 1;
            }
            if j + 1 < tokens.len() && tokens[j].is_ident("mod") {
                if let Some(open) = tokens[j..].iter().position(|t| t.is_punct('{')) {
                    let open = j + open;
                    let close = matching_brace(tokens, open);
                    for slot in mask.iter_mut().take(close + 1).skip(i) {
                        *slot = true;
                    }
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    mask
}

/// Whether tokens at `i` start `#[cfg(test)]` (or `#[cfg(all(test, …))]`).
fn is_cfg_test_attr(tokens: &[Tok], i: usize) -> bool {
    if !(tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[')) {
        return false;
    }
    let end = matching(tokens, i + 1, '[', ']');
    if !tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg")) {
        return false;
    }
    tokens[i + 2..end].iter().any(|t| t.is_ident("test"))
}

/// Index just past an attribute starting at a `#` token.
fn skip_attr(tokens: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    if j < tokens.len() && tokens[j].is_punct('!') {
        j += 1;
    }
    if j < tokens.len() && tokens[j].is_punct('[') {
        return matching(tokens, j, '[', ']') + 1;
    }
    i + 1
}

/// Index of the delimiter matching `tokens[open]` (which must be
/// `open_c`), or the last index if unbalanced.
pub(crate) fn matching(tokens: &[Tok], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Index of the `}` matching the `{` at `open`.
pub(crate) fn matching_brace(tokens: &[Tok], open: usize) -> usize {
    matching(tokens, open, '{', '}')
}

/// A function body as a token range (body braces included).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FnBody {
    /// Index of the opening `{`.
    pub open: usize,
    /// Index of the matching `}`.
    pub close: usize,
}

/// Every function body in the stream, nested functions and closures
/// included in their enclosing body's range (rules that scan a body
/// therefore see a superset, which is the conservative direction).
pub(crate) fn fn_bodies(tokens: &[Tok]) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") {
            // Walk to the body `{` (skipping parenthesised params and
            // bracketed bounds) or a `;` ending a bodyless signature.
            let mut j = i + 1;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('(') {
                    j = matching(tokens, j, '(', ')') + 1;
                    continue;
                }
                if t.is_punct('{') {
                    out.push(FnBody {
                        open: j,
                        close: matching_brace(tokens, j),
                    });
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn masks_cfg_test_modules() {
        let src = "fn live() {} #[cfg(test)] mod tests { fn hidden() {} } fn after() {}";
        let tokens = lex(src);
        let mask = cfg_test_mask(&tokens);
        let hidden = tokens.iter().position(|t| t.is_ident("hidden")).unwrap();
        let live = tokens.iter().position(|t| t.is_ident("live")).unwrap();
        let after = tokens.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(mask[hidden]);
        assert!(!mask[live]);
        assert!(!mask[after]);
    }

    #[test]
    fn masks_cfg_all_test_and_stacked_attrs() {
        let src = "#[cfg(all(test, unix))] #[allow(dead_code)] mod t { fn x() {} } fn y() {}";
        let tokens = lex(src);
        let mask = cfg_test_mask(&tokens);
        let x = tokens.iter().position(|t| t.is_ident("x")).unwrap();
        let y = tokens.iter().position(|t| t.is_ident("y")).unwrap();
        assert!(mask[x]);
        assert!(!mask[y]);
    }

    #[test]
    fn finds_fn_bodies_past_params_and_where() {
        let src = "fn a(x: i32) -> i32 { x } trait T { fn sig(&self); } \
                   fn b<R>(r: R) -> R where R: Clone { r.clone() }";
        let tokens = lex(src);
        let bodies = fn_bodies(&tokens);
        assert_eq!(bodies.len(), 2, "sig() has no body");
    }
}
