//! A self-contained Rust lexer: the token layer every lint rule reads.
//!
//! The build environment has no crates.io (so no `syn`/`proc-macro2`);
//! following the repository's shim approach this module hand-rolls the
//! subset of Rust lexing the rules need — identifiers, lifetimes versus
//! character literals, all five string flavours (plain, raw, byte,
//! byte-raw, C), nested block comments, numbers, and single-character
//! punctuation — with byte-exact spans so [`lex_full`] round-trips any
//! input. There is deliberately **no parser**: rules work on the raw
//! token stream plus brace/paren nesting, which is enough to answer
//! questions like "does an `unsafe` token appear outside
//! `reactor::sys`?" without trusting `rustc` to be configured right.
//!
//! Robustness contract (property-tested in `tests/lint_props.rs`):
//! lexing never panics on arbitrary input, and concatenating the
//! `text` of every token from [`lex_full`] reproduces the input
//! byte-for-byte — malformed source degrades into `Unknown`/unterminated
//! tokens rather than errors, because a linter must be able to look at
//! code that does not compile yet.

/// What a lexed span is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `fn`, `format`, …).
    Ident,
    /// A lifetime such as `'a` or `'static` (including the quote).
    Lifetime,
    /// An integer or float literal.
    Number,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`, `c"…"`.
    Str,
    /// A character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A `//` comment (including doc comments) up to the newline.
    LineComment,
    /// A `/* … */` comment, nesting respected.
    BlockComment,
    /// A run of whitespace (only emitted by [`lex_full`]).
    Whitespace,
    /// A single punctuation character (`#`, `!`, `+`, `.`, `{`, …).
    Punct,
    /// A byte the lexer has no rule for (emitted so round-trip holds).
    Unknown,
}

/// One lexed token with its exact source text and position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification of the span.
    pub kind: TokKind,
    /// The exact source text of the span.
    pub text: String,
    /// 1-based line of the first byte.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Cursor<'a> {
    src: &'a str,
    chars: std::str::CharIndices<'a>,
    peeked: Option<(usize, char)>,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src,
            chars: src.char_indices(),
            peeked: None,
            line: 1,
        }
    }

    fn peek(&mut self) -> Option<(usize, char)> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    /// Peeks one char past the next one without consuming anything.
    fn peek2(&mut self) -> Option<char> {
        let (idx, c) = self.peek()?;
        self.src[idx + c.len_utf8()..].chars().next()
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.peeked.take().or_else(|| self.chars.next());
        if let Some((_, '\n')) = next {
            self.line += 1;
        }
        next
    }

    fn pos(&mut self) -> usize {
        match self.peek() {
            Some((i, _)) => i,
            None => self.src.len(),
        }
    }

    fn eat_while(&mut self, f: impl Fn(char) -> bool) {
        while let Some((_, c)) = self.peek() {
            if f(c) {
                self.bump();
            } else {
                break;
            }
        }
    }
}

/// Lexes `src` into code tokens only: comments and whitespace are
/// dropped, which is what every rule wants (a quoted or commented-out
/// `unsafe` is not an `unsafe`).
pub fn lex(src: &str) -> Vec<Tok> {
    lex_full(src)
        .into_iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect()
}

/// Lexes `src` keeping every span — whitespace, comments, unknown
/// bytes — so that the concatenated `text` of the result equals `src`.
pub fn lex_full(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some((start, c)) = cur.peek() {
        let line = cur.line;
        let kind = next_kind(&mut cur, c);
        let end = cur.pos();
        debug_assert!(end > start, "lexer must always make progress");
        out.push(Tok {
            kind,
            text: src[start..end].to_string(),
            line,
        });
    }
    out
}

/// Consumes one token starting at `c` and returns its kind.
fn next_kind(cur: &mut Cursor<'_>, c: char) -> TokKind {
    if c.is_whitespace() {
        cur.eat_while(|c| c.is_whitespace());
        return TokKind::Whitespace;
    }
    if c == '/' {
        match cur.peek2() {
            Some('/') => {
                cur.eat_while(|c| c != '\n');
                return TokKind::LineComment;
            }
            Some('*') => {
                block_comment(cur);
                return TokKind::BlockComment;
            }
            _ => {
                cur.bump();
                return TokKind::Punct;
            }
        }
    }
    // Raw strings / raw identifiers / byte and C strings share prefix
    // letters with plain identifiers, so resolve those first.
    if matches!(c, 'r' | 'b' | 'c') {
        if let Some(kind) = prefixed_literal(cur) {
            return kind;
        }
    }
    if is_ident_start(c) {
        cur.bump();
        cur.eat_while(is_ident_continue);
        return TokKind::Ident;
    }
    if c.is_ascii_digit() {
        number(cur);
        return TokKind::Number;
    }
    match c {
        '"' => {
            quoted(cur, '"');
            TokKind::Str
        }
        '\'' => quote_or_lifetime(cur),
        '{' | '}' | '(' | ')' | '[' | ']' => {
            cur.bump();
            TokKind::Punct
        }
        _ if c.is_ascii() && c.is_ascii_punctuation() => {
            cur.bump();
            TokKind::Punct
        }
        _ => {
            cur.bump();
            TokKind::Unknown
        }
    }
}

/// `/* … */` with nesting; an unterminated comment runs to EOF.
fn block_comment(cur: &mut Cursor<'_>) {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        match cur.bump() {
            Some((_, '*')) if matches!(cur.peek(), Some((_, '/'))) => {
                cur.bump();
                depth -= 1;
            }
            Some((_, '/')) if matches!(cur.peek(), Some((_, '*'))) => {
                cur.bump();
                depth += 1;
            }
            Some(_) => {}
            None => break,
        }
    }
}

/// Tries `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `br#"…"#`, `b'…'`,
/// `c"…"` from the current position; returns `None` (consuming
/// nothing) when the prefix letters turn out to start a plain ident.
fn prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokKind> {
    let (start, first) = cur.peek()?;
    let rest = &cur.src[start..];
    let mut prefix_len = 1usize;
    if first == 'b' && rest[1..].starts_with('r') {
        prefix_len = 2;
    }
    let after = &rest[prefix_len..];
    let raw = first == 'r' || prefix_len == 2;
    if raw {
        // r / br: count hashes, then require a quote.
        let hashes = after.chars().take_while(|&c| c == '#').count();
        let after_hashes = &after[hashes..];
        if after_hashes.starts_with('"') {
            for _ in 0..(prefix_len + hashes + 1) {
                cur.bump();
            }
            raw_string_body(cur, hashes);
            return Some(TokKind::Str);
        }
        if first == 'r' && hashes == 1 {
            // r#ident raw identifier.
            if after_hashes.chars().next().map(is_ident_start) == Some(true) {
                cur.bump(); // r
                cur.bump(); // #
                cur.bump();
                cur.eat_while(is_ident_continue);
                return Some(TokKind::Ident);
            }
        }
        return None;
    }
    // b"…" / c"…" / b'…'
    if after.starts_with('"') {
        cur.bump();
        quoted(cur, '"');
        return Some(TokKind::Str);
    }
    if first == 'b' && after.starts_with('\'') {
        cur.bump();
        quoted(cur, '\'');
        return Some(TokKind::Char);
    }
    None
}

/// Body of a raw string already past the opening quote: runs to a
/// quote followed by `hashes` hashes, or EOF.
fn raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some((i, c)) = cur.bump() {
        if c == '"' {
            let tail = &cur.src[i + 1..];
            if tail.chars().take(hashes).filter(|&c| c == '#').count() == hashes {
                for _ in 0..hashes {
                    cur.bump();
                }
                return;
            }
        }
    }
}

/// A `"…"`/`'…'` literal with backslash escapes, starting at the
/// opening quote; unterminated literals run to EOF (or end of line for
/// chars, so one stray quote cannot swallow a whole file).
fn quoted(cur: &mut Cursor<'_>, close: char) {
    cur.bump(); // opening quote
    while let Some((_, c)) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            c if c == close => return,
            '\n' if close == '\'' => return,
            _ => {}
        }
    }
}

/// Distinguishes `'a` / `'static` (lifetime) from `'x'` / `'\n'`
/// (char literal): a quote then ident chars is a lifetime unless a
/// closing quote follows immediately.
fn quote_or_lifetime(cur: &mut Cursor<'_>) -> TokKind {
    let next = cur.peek2();
    match next {
        Some(c) if is_ident_start(c) => {
            // Could be 'a' (char) or 'abc (lifetime): lex the ident run
            // and check for a closing quote right after it.
            let (start, _) = cur.peek().expect("peeked");
            let mut end = start + 1;
            for c in cur.src[start + 1..].chars() {
                if is_ident_continue(c) {
                    end += c.len_utf8();
                } else {
                    break;
                }
            }
            if cur.src[end..].starts_with('\'') {
                quoted(cur, '\'');
                TokKind::Char
            } else {
                cur.bump(); // '
                cur.eat_while(is_ident_continue);
                TokKind::Lifetime
            }
        }
        Some(_) => {
            quoted(cur, '\'');
            TokKind::Char
        }
        None => {
            cur.bump();
            TokKind::Punct
        }
    }
}

/// Integer or float literal, including `0x…`/`0b…`, `_` separators,
/// type suffixes, a fraction part, and exponents. Deliberately loose:
/// `1.max` must stay `1` `.` `max`, and `0..10` two ints and a range.
fn number(cur: &mut Cursor<'_>) {
    cur.bump();
    cur.eat_while(is_ident_continue);
    // Fraction: only when '.' is followed by a digit (not `.method`,
    // not `..` range).
    if let Some((_, '.')) = cur.peek() {
        if cur.peek2().map(|c| c.is_ascii_digit()) == Some(true) {
            cur.bump();
            cur.eat_while(is_ident_continue);
        }
    }
    // Exponent sign: `1e-9` lexes `1e` then continues past the sign.
    if let Some((i, c)) = cur.peek() {
        if (c == '+' || c == '-') && cur.src[..i].ends_with(['e', 'E']) {
            // Only if the digits continue: `1e-9` yes, `1-x` no
            // (that '1' would not end with 'e').
            if cur.peek2().map(|c| c.is_ascii_digit()) == Some(true) {
                cur.bump();
                cur.eat_while(is_ident_continue);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("unsafe fn f(x: &str) {}");
        assert_eq!(toks[0], (TokKind::Ident, "unsafe".into()));
        assert_eq!(toks[1], (TokKind::Ident, "fn".into()));
        assert!(toks.iter().any(|t| t.1 == "{"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let x = "unsafe { }"; // unsafe"#);
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokKind::Ident && t.1 == "unsafe"));
        assert_eq!(toks.iter().filter(|t| t.0 == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r###"let x = r#"a "quoted" b"#; y"###);
        assert!(toks
            .iter()
            .any(|t| t.0 == TokKind::Str && t.1.contains("quoted")));
        assert!(toks.iter().any(|t| t.1 == "y"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|t| t.0 == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.0 == TokKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* x /* y */ z */ b");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "b");
    }

    #[test]
    fn numbers_do_not_eat_methods_or_ranges() {
        let toks = kinds("1.max(2) 0..10 1.5e-3");
        let texts: Vec<&str> = toks.iter().map(|t| t.1.as_str()).collect();
        assert_eq!(texts[0], "1");
        assert_eq!(texts[1], ".");
        assert!(texts.contains(&"0") && texts.contains(&"10"));
        assert!(texts.contains(&"1.5e-3"));
    }

    #[test]
    fn full_lex_round_trips() {
        let src =
            "fn main() { /* c */ let s = \"x\\\"y\"; foo(b'\\n', r##\"raw\"##); } // t\n\u{1F980}";
        let joined: String = lex_full(src).into_iter().map(|t| t.text).collect();
        assert_eq!(joined, src);
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "\"unterminated",
            "r#\"unterminated",
            "/* unterminated",
            "'",
            "'\\",
            "b",
            "r#",
            "\u{0}\u{7f}\\",
        ] {
            let joined: String = lex_full(src).into_iter().map(|t| t.text).collect();
            assert_eq!(joined, src);
        }
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }
}
