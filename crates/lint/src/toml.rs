//! A minimal TOML-subset reader for the lint's two policy files
//! (`lint.allow.toml`, `DECLASSIFY.toml`).
//!
//! The build environment has no crates.io, so — in the shims
//! tradition — this parses exactly the subset those files use:
//!
//! * `#` comments and blank lines,
//! * `[[name]]` array-of-tables headers (each opens a new entry),
//! * `key = "basic string"` with `\"` `\\` `\n` `\t` escapes,
//! * `key = 123`, `key = true` / `false`.
//!
//! Anything else is a hard parse error with a line number: policy
//! files gate CI, so a typo must fail loudly rather than silently
//! allowlisting nothing.

use std::fmt;

/// A scalar value in a policy file.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }
}

/// One `[[header]]` entry: the header name plus its key/value pairs in
/// file order.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The array-of-tables name (`allow`, `site`, …).
    pub header: String,
    /// Line of the `[[header]]` row, for diagnostics.
    pub line: u32,
    /// Key/value pairs under the header.
    pub pairs: Vec<(String, Value)>,
}

impl Entry {
    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a string key.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }
}

/// A malformed policy file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending row.
    pub line: u32,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: u32, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a policy file into its `[[…]]` entries.
///
/// # Errors
///
/// [`ParseError`] on any row the subset does not cover.
pub fn parse(src: &str) -> Result<Vec<Entry>, ParseError> {
    let mut entries: Vec<Entry> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| err(lineno, "unterminated [[header]]"))?
                .trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(err(lineno, format!("bad table name {name:?}")));
            }
            entries.push(Entry {
                header: name.to_string(),
                line: lineno,
                pairs: Vec::new(),
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(err(
                lineno,
                "plain [tables] are not used here; use [[entry]] arrays",
            ));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, "expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err(lineno, format!("bad key {key:?}")));
        }
        let value = parse_value(value.trim(), lineno)?;
        let entry = entries
            .last_mut()
            .ok_or_else(|| err(lineno, "key/value outside any [[entry]]"))?;
        if entry.get(key).is_some() {
            return Err(err(lineno, format!("duplicate key {key:?} in entry")));
        }
        entry.pairs.push((key.to_string(), value));
    }
    Ok(entries)
}

/// Strips a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(v: &str, line: u32) -> Result<Value, ParseError> {
    if v == "true" {
        return Ok(Value::Bool(true));
    }
    if v == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = v.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| err(line, "unterminated string"))?;
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '"' {
                return Err(err(line, "unescaped quote inside string"));
            }
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => return Err(err(line, format!("unsupported escape \\{other:?}"))),
            }
        }
        return Ok(Value::Str(out));
    }
    v.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| err(line, format!("unrecognised value {v:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments() {
        let src = r#"
# registry
[[site]]
path = "crates/x/src/lib.rs"  # where
count = 2
audited = true

[[site]]
path = "other # not a comment"
"#;
        let entries = parse(src).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].header, "site");
        assert_eq!(entries[0].str("path"), Some("crates/x/src/lib.rs"));
        assert_eq!(entries[0].get("count").unwrap().as_int(), Some(2));
        assert_eq!(entries[0].get("audited"), Some(&Value::Bool(true)));
        assert_eq!(entries[1].str("path"), Some("other # not a comment"));
    }

    #[test]
    fn escapes_in_strings() {
        let entries = parse("[[e]]\nj = \"a \\\"b\\\" \\n c\"").unwrap();
        assert_eq!(entries[0].str("j"), Some("a \"b\" \n c"));
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(parse("key = 1").is_err(), "kv outside entry");
        assert!(parse("[[e]]\nkey 1").is_err(), "missing =");
        assert!(parse("[[e]]\nkey = \"open").is_err(), "unterminated");
        assert!(parse("[e]\n").is_err(), "plain table");
        assert!(parse("[[e]]\nk = 1\nk = 2").is_err(), "duplicate key");
        assert!(parse("[[e]]\nk = nope").is_err(), "bare word");
    }
}
