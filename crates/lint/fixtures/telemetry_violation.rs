//! SEEDED VIOLATION (telemetry-hygiene): payload and principal data
//! flows into telemetry record sinks, directly and through `let`
//! bindings — the declassification side channel the label-safe
//! telemetry contract forbids.

/// Direct: an event attribute becomes a span name.
pub fn trace_case(event: &LabelledEvent, start: u64) {
    record_span(
        "engine",
        event.attr("patient").unwrap_or(""),
        event.trace_id(),
        start,
        None,
    );
}

/// Indirect: a principal-derived string flows through a binding into a
/// metric name (interpolated, so the leak hides inside the literal).
pub fn count_request(user: &AuthenticatedUser, registry: &MetricsRegistry) {
    let who = user.username.clone();
    let c = registry.counter(&format!("web.requests.{who}"));
    c.inc();
}

/// Document bytes as a slow-activation task name.
pub fn profile_store(doc: &Document, dur: u64) {
    let summary = doc.body_str().unwrap_or_default();
    record_slow(summary, dur, Vec::new());
}
