//! SEEDED VIOLATION (test-liveness): the PR-7 bug class, twice over.
//! `never_runs` has no `#[test]` meta, so the shim expands it to a
//! plain function nothing invokes — the suite looks green because it
//! asserts nothing.

use proptest::prelude::*;

proptest! {
    #[test]
    fn alive(x in 0..100i64) {
        prop_assert!(x < 100);
    }

    /// A doc comment is not a `#[test]` meta.
    fn never_runs(s in "\\PC{0,16}") {
        prop_assert!(s.len() < 1, "would fail loudly if it ever ran");
    }
}
