//! Clean twin of `liveness_violation_props.rs`: every `proptest!` fn
//! carries the `#[test]` meta the shim requires, so both properties
//! actually run.

use proptest::prelude::*;

proptest! {
    #[test]
    fn alive(x in 0..100i64) {
        prop_assert!(x < 100);
    }

    /// Doc comments are fine as long as the meta is present too.
    #[test]
    fn also_alive(s in "\\PC{0,16}") {
        prop_assert!(s.chars().all(|c| c != '\u{0}'));
    }
}
