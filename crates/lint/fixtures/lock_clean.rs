//! Clean twin of `lock_violation.rs`: the same functions with one
//! global acquisition order (`tables` before `index`, `log` before
//! `map`), plus scoping/drop patterns that release before reacquiring.

impl Store {
    /// Takes `tables` then `index` — the canonical order.
    pub fn insert(&self, rec: Record) {
        let tables = self.tables.lock();
        let index = self.index.lock();
        index.add(tables.put(rec));
    }

    /// Same order as `insert`.
    pub fn compact(&self) {
        let tables = self.tables.lock();
        let index = self.index.lock();
        tables.sweep(&index);
    }

    /// A block releases `log` before `map`, so no edge forms.
    pub fn replay(&self) {
        {
            let log = self.log.lock();
            log.tick();
        }
        let map = self.map.read();
        map.warm();
    }

    /// Explicit drop releases `map` before taking `log`.
    pub fn snapshot(&self) {
        let map = self.map.write();
        map.stamp_header();
        drop(map);
        let log = self.log.lock();
        log.flush();
    }
}
