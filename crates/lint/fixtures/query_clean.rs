//! Clean twin of `query_violation.rs`: the same queries through the
//! typed surfaces — literal view names, bound parameters, and
//! `format!` confined to *value* arguments, which are data, not
//! structure.

/// Structure from literals, user input as a bound value.
pub fn find_direct(db: &Db, user: &SStr) -> Vec<Record> {
    let spec = QuerySpec::table("records").filter(Filter::eq("name", user));
    db.select_spec(&spec)
}

/// A literal view name; the formatted string is only the lookup *key*.
pub fn find_indirect(ctx: &Ctx<'_>, mdt: u32) -> Vec<Record> {
    let key = format!("mdt/{mdt}");
    ctx.records_by("by_mdt", &key)
}
