//! Clean twin of `unsafe_violation.rs`: the same operation through a
//! safe API. The words "unsafe" in this doc comment and in the string
//! below must NOT count — the rule is lexer-level, not grep-level.

/// Safe header read.
pub fn read_header(buf: &[u8]) -> u32 {
    let mut out = [0u8; 4];
    out.copy_from_slice(&buf[..4]);
    let _note = "unsafe only as a string literal";
    u32::from_le_bytes(out)
}
