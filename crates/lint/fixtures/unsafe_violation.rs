//! SEEDED VIOLATION (unsafe-confinement): an `unsafe` block outside
//! the sanctioned `crates/reactor/src/sys.rs` module.

/// Pretends to need a raw pointer read; the safe twin uses `copy_from_slice`.
pub fn read_header(buf: &[u8]) -> u32 {
    let mut out = [0u8; 4];
    unsafe {
        std::ptr::copy_nonoverlapping(buf.as_ptr(), out.as_mut_ptr(), 4);
    }
    u32::from_le_bytes(out)
}
