//! SEEDED VIOLATION (unsafe-confinement): a crate root with no
//! `#![forbid(unsafe_code)]` gate — the compiler half of the
//! confinement invariant is missing.

#![deny(missing_docs)]

/// A perfectly safe function in an ungated crate.
pub fn fine() -> u8 {
    7
}
