//! Clean twin of `telemetry_violation.rs`: the same instrumentation
//! recording **structure only** — static names, route patterns,
//! prefixed metric names, durations and interned label-set ids.

/// Span named by the static unit name; the label slot carries only the
/// interned id.
pub fn trace_case(event: &LabelledEvent, unit_name: &str, start: u64) {
    record_span(
        "engine",
        unit_name,
        event.trace_id(),
        start,
        Some(event.labels().id().as_u32()),
    );
}

/// Metric names from static strings and a structural prefix; the
/// payload is only *measured*, never recorded.
pub fn count_request(registry: &MetricsRegistry, prefix: &str, bytes: usize) {
    let c = registry.counter(&format!("{prefix}.requests"));
    c.inc();
    let h = registry.histogram("web.body_bytes");
    h.observe(bytes as u64);
}

/// Slow activations name the task, not its data.
pub fn profile_store(task: &str, dur: u64) {
    record_slow(task, dur, Vec::new());
}
