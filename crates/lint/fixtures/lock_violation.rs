//! SEEDED VIOLATION (lock-order): two functions acquire the same two
//! locks in opposite orders — the classic AB/BA deadlock, plus a
//! reader/writer variant closing a second cycle through `map`.

impl Store {
    /// Takes `tables` then `index`.
    pub fn insert(&self, rec: Record) {
        let tables = self.tables.lock();
        let index = self.index.lock();
        index.add(tables.put(rec));
    }

    /// Takes `index` then `tables` — the reversed pair.
    pub fn compact(&self) {
        let index = self.index.lock();
        let tables = self.tables.lock();
        tables.sweep(&index);
    }

    /// `map` read while holding `log`…
    pub fn replay(&self) {
        let log = self.log.lock();
        let map = self.map.read();
        log.apply(&map);
    }

    /// …and `log` while holding `map`.
    pub fn snapshot(&self) {
        let map = self.map.write();
        let log = self.log.lock();
        map.stamp(&log);
    }
}
