//! Clean twin of `unsafe_root_violation.rs`: the root carries the gate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A perfectly safe function in a gated crate.
pub fn fine() -> u8 {
    7
}
