//! Declassification fixture: three marker call sites. Against an
//! empty registry this is a SEEDED VIOLATION (three unregistered
//! sites); against `declassify_registry.toml` (the clean twin of the
//! policy, with exact counts) it is clean.

/// Escapes a user comment for HTML interpolation.
pub fn render_comment(raw: &SStr) -> SStr {
    raw.sanitize_html()
}

/// Builds the admin console's free-form selector.
pub fn admin_selector(text: &SStr) -> TrustedLiteral {
    let escaped = text.sanitize_sql();
    TrustedLiteral::declassified(&escaped, "admin console, reviewed query surface")
}
