//! SEEDED VIOLATION (query-hygiene): `format!` output flows into
//! structure-consuming sinks, directly and through a `let` binding —
//! the SQLi shape the typed query surfaces exist to forbid.

/// Direct: `format!` inside the sink's argument list.
pub fn find_direct(db: &Db, user: &str) -> Vec<Record> {
    db.select_spec(&parse_trusted(&format!("name = '{user}'")))
}

/// Indirect: the taint flows through a local binding into the
/// untrusted-text parser and into a view name.
pub fn find_indirect(ctx: &Ctx<'_>, user: &str) -> Vec<Record> {
    let source = format!("mdt = '{user}'");
    let sel = Selector::parse(&source);
    let view = "by_".to_string() + user + "'";
    ctx.records_by(&view, sel)
}
