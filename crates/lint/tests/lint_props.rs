//! Property tests for the lint's lexer: the whole analyzer stands on
//! `lex_full` reconstructing its input byte-for-byte and never
//! panicking, however malformed the source — the lint must be able to
//! walk a tree that does not compile.

use proptest::prelude::*;
use safeweb_lint::lexer::{lex, lex_full};

fn round_trip(src: &str) -> String {
    lex_full(src).into_iter().map(|t| t.text).collect()
}

proptest! {
    /// Arbitrary printable source (including multibyte) survives the
    /// lexer and reassembles exactly.
    #[test]
    fn lexer_round_trips_printable_source(src in "\\PC{0,64}") {
        prop_assert_eq!(round_trip(&src), src);
    }

    /// Delimiter soup — quote/comment/raw-string openers, braces,
    /// backslashes, newlines — maximises unterminated-literal and
    /// nesting edge cases; the lexer must degrade, not panic.
    #[test]
    fn lexer_survives_delimiter_soup(src in "[\"'#{}()/*!rb\\\\ \n0-]{0,48}") {
        prop_assert_eq!(round_trip(&src), src);
    }

    /// The trivia-dropping `lex` agrees with `lex_full`: same code
    /// tokens, non-decreasing line numbers.
    #[test]
    fn code_tokens_are_ordered(src in "\\PC{0,64}") {
        let toks = lex(&src);
        for pair in toks.windows(2) {
            prop_assert!(pair[0].line <= pair[1].line);
        }
    }
}
