//! Mutation checks for every lint rule against the seeded-violation
//! corpus in `fixtures/`: each `*_violation.rs` fixture MUST produce
//! findings of exactly its rule, and each clean twin MUST produce
//! none. If a rule silently stops firing — the failure mode the lint
//! exists to prevent — these tests fail, so the corpus keeps the lint
//! honest the same way the lint keeps the workspace honest.

use safeweb_lint::{run_rules, Allowlist, FileKind, Registry, SourceFile, Workspace};

const UNSAFE_VIOLATION: &str = include_str!("../fixtures/unsafe_violation.rs");
const UNSAFE_CLEAN: &str = include_str!("../fixtures/unsafe_clean.rs");
const ROOT_VIOLATION: &str = include_str!("../fixtures/unsafe_root_violation.rs");
const ROOT_CLEAN: &str = include_str!("../fixtures/unsafe_root_clean.rs");
const DECLASSIFY_SITES: &str = include_str!("../fixtures/declassify_sites.rs");
const DECLASSIFY_REGISTRY: &str = include_str!("../fixtures/declassify_registry.toml");
const QUERY_VIOLATION: &str = include_str!("../fixtures/query_violation.rs");
const QUERY_CLEAN: &str = include_str!("../fixtures/query_clean.rs");
const LOCK_VIOLATION: &str = include_str!("../fixtures/lock_violation.rs");
const LOCK_CLEAN: &str = include_str!("../fixtures/lock_clean.rs");
const LIVENESS_VIOLATION: &str = include_str!("../fixtures/liveness_violation_props.rs");
const LIVENESS_CLEAN: &str = include_str!("../fixtures/liveness_clean_props.rs");
const TELEMETRY_VIOLATION: &str = include_str!("../fixtures/telemetry_violation.rs");
const TELEMETRY_CLEAN: &str = include_str!("../fixtures/telemetry_clean.rs");

/// A one-file workspace at a realistic workspace-relative path.
fn ws(rel: &str, kind: FileKind, src: &str) -> Workspace {
    Workspace::from_files(vec![SourceFile::from_source(rel, "netstub", kind, src)])
}

/// Runs every rule with empty policies and returns the kept findings.
fn lint(ws: &Workspace) -> Vec<safeweb_lint::Finding> {
    run_rules(ws, &Registry::default(), &Allowlist::default()).findings
}

/// Asserts the seeded violation fires exactly `expected` findings, all
/// of rule `rule`, and that the clean twin is silent.
fn mutation_check(rule: &str, expected: usize, violation: &Workspace, clean: &Workspace) {
    let findings = lint(violation);
    assert_eq!(
        findings.len(),
        expected,
        "seeded {rule} violation must fire {expected} findings: {findings:?}"
    );
    for f in &findings {
        assert_eq!(f.rule, rule, "unexpected rule fired: {f}");
        assert!(f.line > 0 || rule == "test-liveness", "missing line: {f}");
    }
    let findings = lint(clean);
    assert!(findings.is_empty(), "clean twin must pass: {findings:?}");
}

#[test]
fn unsafe_confinement_catches_stray_unsafe() {
    mutation_check(
        "unsafe-confinement",
        1,
        &ws("crates/netstub/src/io.rs", FileKind::Src, UNSAFE_VIOLATION),
        &ws("crates/netstub/src/io.rs", FileKind::Src, UNSAFE_CLEAN),
    );
}

#[test]
fn unsafe_confinement_catches_missing_root_gate() {
    mutation_check(
        "unsafe-confinement",
        1,
        &ws("crates/netstub/src/lib.rs", FileKind::Src, ROOT_VIOLATION),
        &ws("crates/netstub/src/lib.rs", FileKind::Src, ROOT_CLEAN),
    );
}

#[test]
fn declassify_registry_catches_unregistered_sites() {
    let files = ws(
        "crates/netstub/src/escape.rs",
        FileKind::Src,
        DECLASSIFY_SITES,
    );
    // Violation: the three marker sites against an empty registry.
    let findings = lint(&files);
    assert_eq!(findings.len(), 3, "{findings:?}");
    for f in &findings {
        assert_eq!(f.rule, "declassify-registry");
        assert!(f.message.contains("unregistered"), "{f}");
    }
    // Clean twin: the checked-in fixture registry enumerates them all.
    let registry = Registry::parse(DECLASSIFY_REGISTRY).expect("fixture registry parses");
    let report = run_rules(&files, &registry, &Allowlist::default());
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn declassify_registry_catches_count_drift_and_stale_entries() {
    let files = ws(
        "crates/netstub/src/escape.rs",
        FileKind::Src,
        DECLASSIFY_SITES,
    );
    // Mutation: bump one count without adding a site.
    let drifted = DECLASSIFY_REGISTRY.replacen("count = 1", "count = 2", 1);
    let registry = Registry::parse(&drifted).unwrap();
    let findings = run_rules(&files, &registry, &Allowlist::default()).findings;
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("drifted"), "{}", findings[0]);

    // Mutation: keep the registry but delete the declassifying code —
    // every entry is now stale and must be flagged for deletion.
    let registry = Registry::parse(DECLASSIFY_REGISTRY).unwrap();
    let empty = ws(
        "crates/netstub/src/escape.rs",
        FileKind::Src,
        "pub fn f() {}",
    );
    let findings = run_rules(&empty, &registry, &Allowlist::default()).findings;
    assert_eq!(findings.len(), 3, "{findings:?}");
    for f in &findings {
        assert!(f.message.contains("stale"), "{f}");
        assert_eq!(f.path, "DECLASSIFY.toml");
    }
}

#[test]
fn telemetry_hygiene_catches_payload_into_record_sinks() {
    // Three seeded flows: an event attribute directly into a span
    // name, a principal-derived string interpolated into a metric
    // name, and document bytes into a slow-activation task name.
    mutation_check(
        "telemetry-hygiene",
        3,
        &ws(
            "crates/netstub/src/obs.rs",
            FileKind::Src,
            TELEMETRY_VIOLATION,
        ),
        &ws("crates/netstub/src/obs.rs", FileKind::Src, TELEMETRY_CLEAN),
    );

    // Mutation: neutering the seeded flows one at a time must drop
    // exactly one finding each — proving each detector fires
    // independently rather than one flow masking the others.
    for (needle, replacement) in [
        (r#"event.attr("patient").unwrap_or("")"#, r#""unit-name""#),
        ("web.requests.{who}", "web.requests"),
        ("record_slow(summary, dur", r#"record_slow("storage", dur"#),
    ] {
        let mutated = TELEMETRY_VIOLATION.replacen(needle, replacement, 1);
        assert_ne!(
            mutated, TELEMETRY_VIOLATION,
            "mutation {needle:?} must apply"
        );
        let findings = lint(&ws("crates/netstub/src/obs.rs", FileKind::Src, &mutated));
        assert_eq!(findings.len(), 2, "neutering {needle:?}: {findings:?}");
    }
}

#[test]
fn query_hygiene_catches_concat_into_sinks() {
    // Three seeded flows: format! directly into select_spec's args,
    // a tainted let into Selector::parse, and a `+`-built view name
    // into records_by.
    mutation_check(
        "query-hygiene",
        3,
        &ws("crates/netstub/src/find.rs", FileKind::Src, QUERY_VIOLATION),
        &ws("crates/netstub/src/find.rs", FileKind::Src, QUERY_CLEAN),
    );
}

#[test]
fn lock_order_catches_both_seeded_cycles() {
    // AB/BA on tables/index plus the reader-writer cycle on log/map.
    mutation_check(
        "lock-order",
        2,
        &ws("crates/netstub/src/store.rs", FileKind::Src, LOCK_VIOLATION),
        &ws("crates/netstub/src/store.rs", FileKind::Src, LOCK_CLEAN),
    );
}

#[test]
fn test_liveness_catches_metaless_proptest_fn() {
    mutation_check(
        "test-liveness",
        1,
        &ws(
            "crates/netstub/tests/escape_props.rs",
            FileKind::Test,
            LIVENESS_VIOLATION,
        ),
        &ws(
            "crates/netstub/tests/escape_props.rs",
            FileKind::Test,
            LIVENESS_CLEAN,
        ),
    );
}

#[test]
fn allowlist_suppresses_exactly_its_rule_and_path() {
    let files = ws("crates/netstub/src/find.rs", FileKind::Src, QUERY_VIOLATION);
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"query-hygiene\"\npath = \"crates/netstub/src/find.rs\"\n\
         justification = \"fixture: deliberate negative control for the suppression test\"",
    )
    .unwrap();
    let report = run_rules(&files, &Registry::default(), &allow);
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.suppressed.len(), 3, "{:?}", report.suppressed);
}

#[test]
fn stale_allowlist_entry_is_itself_a_finding() {
    let files = ws("crates/netstub/src/find.rs", FileKind::Src, QUERY_CLEAN);
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"query-hygiene\"\npath = \"crates/netstub/src/find.rs\"\n\
         justification = \"fixture: this exemption no longer suppresses anything\"",
    )
    .unwrap();
    let findings = run_rules(&files, &Registry::default(), &allow).findings;
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "allowlist");
    assert!(findings[0].message.contains("stale"), "{}", findings[0]);
}

#[test]
fn shipped_tree_is_lint_clean() {
    // The acceptance criterion, as a test: the checked-in workspace
    // (with its checked-in policy files) produces zero findings.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let report = safeweb_lint::run_workspace(root, &Default::default()).expect("lint runs");
    assert!(
        report.is_clean(),
        "shipped tree has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
