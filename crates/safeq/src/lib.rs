//! # safeweb-safeq
//!
//! Secure-by-construction query literals, after google/safe-active-record:
//! the query surfaces of the relational store, the document store and the
//! selector language accept [`TrustedLiteral`] where they used to accept
//! `&str`, so the *structure* of a query (table names, column names,
//! selector templates) can only come from three places:
//!
//! 1. **Compile-time literals.** The only implicit conversion into
//!    [`TrustedLiteral`] is `From<&'static str>`, the Rust analogue of
//!    safe-active-record's "only Symbols and frozen literals" rule. A
//!    string built at runtime — in particular one concatenated from user
//!    input — does not have a `'static` lifetime, so passing it is a
//!    **compile error**:
//!
//!    ```compile_fail
//!    use safeweb_safeq::TrustedLiteral;
//!
//!    let attacker_controlled = String::from("name = 'x' OR '1' = '1'");
//!    // error[E0716]/E0597: a runtime String is not `&'static str`.
//!    let _: TrustedLiteral = attacker_controlled.as_str().into();
//!    ```
//!
//! 2. **Checked runtime strings.** [`TrustedLiteral::checked`] accepts a
//!    labelled string only if it is *not* user-tainted, returning a typed
//!    [`Rejected`] error otherwise — the paths where query text is
//!    assembled by trusted server code but flows through [`SStr`].
//!
//! 3. **Audited declassification.** [`TrustedLiteral::declassified`] is
//!    the escape hatch: it always succeeds, but demands a static
//!    justification and records every use in a process-wide audit log
//!    ([`declassify_events`]), so a grep of the codebase plus the log
//!    enumerates every place raw user input can shape a query.
//!
//! *Values* never need trust: [`Param`] carries them into parameter
//! binding, where quoting metacharacters cannot change query structure.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::borrow::Cow;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use safeweb_taint::SStr;

/// Where a [`TrustedLiteral`] got its trust.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// A `&'static str` compile-time literal.
    Literal,
    /// A runtime string that passed the [`TrustedLiteral::checked`]
    /// taint check.
    Checked,
    /// Explicitly declassified via [`TrustedLiteral::declassified`]
    /// (recorded in the audit log).
    Declassified,
}

/// A string trusted to form query *structure* (a table name, a column
/// name, a selector template). See the crate docs for the three ways to
/// obtain one; there is deliberately no `From<String>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrustedLiteral {
    text: Cow<'static, str>,
    provenance: Provenance,
}

impl TrustedLiteral {
    /// Admits a runtime string after checking it is not user-tainted.
    ///
    /// Confidentiality labels are allowed through — they track what the
    /// *response* may disclose (enforced at the release boundary), while
    /// this check guards query *integrity* against unsanitised user
    /// input.
    ///
    /// # Errors
    ///
    /// [`Rejected`] if `s` carries the user-taint bit.
    pub fn checked(s: &SStr) -> Result<TrustedLiteral, Rejected> {
        if s.is_user_tainted() {
            return Err(Rejected::new(s.as_str()));
        }
        Ok(TrustedLiteral {
            text: Cow::Owned(s.as_str().to_string()),
            provenance: Provenance::Checked,
        })
    }

    /// The escape hatch: trusts `s` unconditionally, recording the use —
    /// justification plus a truncated preview of the value — in the
    /// process-wide audit log ([`declassify_events`]).
    ///
    /// The log retains at most [`AUDIT_CAP`] events so a hot
    /// declassifying path cannot grow process memory without bound;
    /// once full, further events only bump [`declassify_dropped`]
    /// (and [`declassify_count`], which always counts every call).
    pub fn declassified(s: &SStr, justification: &'static str) -> TrustedLiteral {
        DECLASSIFY_COUNT.fetch_add(1, Ordering::Relaxed);
        let mut log = audit_log().lock().expect("audit log lock");
        if log.len() < AUDIT_CAP {
            let mut preview = s.as_str().to_string();
            if preview.len() > PREVIEW_LIMIT {
                let mut end = PREVIEW_LIMIT;
                while !preview.is_char_boundary(end) {
                    end -= 1;
                }
                preview.truncate(end);
            }
            log.push(DeclassifyEvent {
                justification,
                preview,
            });
        } else {
            DECLASSIFY_DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        drop(log);
        TrustedLiteral {
            text: Cow::Owned(s.as_str().to_string()),
            provenance: Provenance::Declassified,
        }
    }

    /// The trusted text.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// How this literal earned its trust.
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }
}

impl From<&'static str> for TrustedLiteral {
    fn from(text: &'static str) -> TrustedLiteral {
        TrustedLiteral {
            text: Cow::Borrowed(text),
            provenance: Provenance::Literal,
        }
    }
}

impl fmt::Display for TrustedLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

const PREVIEW_LIMIT: usize = 64;

/// A tainted string was refused where query structure is formed.
///
/// The message names the fix — bind the value as a [`Param`] — without
/// echoing the tainted text (error pages must not reflect user input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    len: usize,
}

impl Rejected {
    fn new(text: &str) -> Rejected {
        Rejected { len: text.len() }
    }

    /// Byte length of the refused string (safe to report; its content is
    /// deliberately not carried).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the refused string was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rejected: user-tainted data ({} bytes) cannot form query structure; \
             bind it as a parameter or declassify explicitly",
            self.len
        )
    }
}

impl std::error::Error for Rejected {}

/// One recorded use of [`TrustedLiteral::declassified`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeclassifyEvent {
    /// The static justification the call site supplied.
    pub justification: &'static str,
    /// The declassified text, truncated to 64 bytes.
    pub preview: String,
}

/// Maximum events retained by the declassification audit log. The
/// first `AUDIT_CAP` uses keep their full record (the audit question
/// is "which call sites declassify what" — answered by the earliest
/// events); beyond that only the counters grow, so the log is a fixed
/// memory cost no matter how hot the declassifying path is.
pub const AUDIT_CAP: usize = 4096;

static DECLASSIFY_COUNT: AtomicU64 = AtomicU64::new(0);
static DECLASSIFY_DROPPED: AtomicU64 = AtomicU64::new(0);
static AUDIT: Mutex<Vec<DeclassifyEvent>> = Mutex::new(Vec::new());

fn audit_log() -> &'static Mutex<Vec<DeclassifyEvent>> {
    &AUDIT
}

/// Total [`TrustedLiteral::declassified`] calls in this process.
pub fn declassify_count() -> u64 {
    DECLASSIFY_COUNT.load(Ordering::Relaxed)
}

/// Events *not* recorded because the audit log was already at
/// [`AUDIT_CAP`]. Nonzero means [`declassify_events`] is a prefix of
/// the true history; [`declassify_count`] still counts every call.
pub fn declassify_dropped() -> u64 {
    DECLASSIFY_DROPPED.load(Ordering::Relaxed)
}

/// A snapshot of the declassification audit log (at most
/// [`AUDIT_CAP`] events; see [`declassify_dropped`]).
pub fn declassify_events() -> Vec<DeclassifyEvent> {
    audit_log().lock().expect("audit log lock").clone()
}

/// A query *value* for parameter binding. Any string — tainted or not —
/// may be a `Param`: bound values are substituted after tokenisation, so
/// quoting metacharacters cannot change query structure.
#[derive(Debug, Clone, PartialEq)]
pub enum Param {
    /// SQL NULL.
    Null,
    /// A boolean value.
    Bool(bool),
    /// An integer value.
    Int(i64),
    /// A floating-point value.
    Real(f64),
    /// A text value.
    Text(String),
}

impl From<bool> for Param {
    fn from(b: bool) -> Param {
        Param::Bool(b)
    }
}

impl From<i64> for Param {
    fn from(n: i64) -> Param {
        Param::Int(n)
    }
}

impl From<f64> for Param {
    fn from(n: f64) -> Param {
        Param::Real(n)
    }
}

impl From<&str> for Param {
    fn from(s: &str) -> Param {
        Param::Text(s.to_string())
    }
}

impl From<String> for Param {
    fn from(s: String) -> Param {
        Param::Text(s)
    }
}

impl From<&SStr> for Param {
    fn from(s: &SStr) -> Param {
        Param::Text(s.as_str().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_literals_convert_implicitly() {
        let lit: TrustedLiteral = "patients".into();
        assert_eq!(lit.as_str(), "patients");
        assert_eq!(lit.provenance(), Provenance::Literal);
    }

    #[test]
    fn checked_admits_untainted_and_rejects_tainted() {
        let trusted = SStr::public("by_mid");
        let lit = TrustedLiteral::checked(&trusted).unwrap();
        assert_eq!(lit.as_str(), "by_mid");
        assert_eq!(lit.provenance(), Provenance::Checked);

        let tainted = SStr::from_user("x' OR '1'='1");
        let err = TrustedLiteral::checked(&tainted).unwrap_err();
        assert_eq!(err.len(), tainted.as_str().len());
        // The error must not reflect the attacker's bytes.
        assert!(!err.to_string().contains("OR"));
    }

    #[test]
    fn checked_allows_confidential_labels() {
        use safeweb_labels::Label;
        let labelled = SStr::labelled("by_mid", [Label::conf("e", "mdt/a")]);
        assert!(TrustedLiteral::checked(&labelled).is_ok());
    }

    #[test]
    fn declassify_always_succeeds_and_is_audited() {
        let before = declassify_count();
        let tainted = SStr::from_user("name");
        let lit = TrustedLiteral::declassified(&tainted, "test: admin console free-form query");
        assert_eq!(lit.as_str(), "name");
        assert_eq!(lit.provenance(), Provenance::Declassified);
        assert!(declassify_count() > before);
        let events = declassify_events();
        assert!(events
            .iter()
            .any(|e| e.justification.contains("admin console") && e.preview == "name"));
    }

    #[test]
    fn declassify_preview_truncates_on_char_boundary() {
        let long = SStr::from_user(format!("{}é", "x".repeat(PREVIEW_LIMIT - 1)));
        let _ = TrustedLiteral::declassified(&long, "test: truncation");
        let events = declassify_events();
        let ev = events.last().expect("event recorded");
        assert!(ev.preview.len() <= PREVIEW_LIMIT);
        assert!(ev.preview.starts_with("xxx"));
    }

    #[test]
    fn params_from_common_types() {
        assert_eq!(Param::from(true), Param::Bool(true));
        assert_eq!(Param::from(42i64), Param::Int(42));
        assert_eq!(Param::from(1.5f64), Param::Real(1.5));
        assert_eq!(Param::from("x"), Param::Text("x".into()));
        assert_eq!(
            Param::from(&SStr::from_user("x' --")),
            Param::Text("x' --".into())
        );
    }
}
