//! Regression test: the declassification audit log is bounded.
//!
//! Before the cap, every [`TrustedLiteral::declassified`] call pushed
//! an owned event into a process-wide `Vec`, so a hot declassifying
//! path (the admin console under the load rig, say) grew process
//! memory for the lifetime of the server. This test floods well past
//! [`safeweb_safeq::AUDIT_CAP`] and asserts the log stops growing
//! while the counters keep the full history countable.
//!
//! It lives in its own integration-test binary (own process) because
//! it deliberately fills the global log, which would starve the unit
//! tests that assert their own events are recorded.

use safeweb_safeq::{
    declassify_count, declassify_dropped, declassify_events, TrustedLiteral, AUDIT_CAP,
};
use safeweb_taint::SStr;

#[test]
fn audit_log_is_capped_and_drops_are_counted() {
    const OVERSHOOT: usize = 1_000;
    let tainted = SStr::from_user("x' OR '1'='1");
    for _ in 0..AUDIT_CAP + OVERSHOOT {
        let lit = TrustedLiteral::declassified(&tainted, "flood regression: audit bound");
        assert_eq!(lit.as_str(), tainted.as_str());
    }

    let events = declassify_events();
    assert_eq!(
        events.len(),
        AUDIT_CAP,
        "the log must stop growing at the cap"
    );
    assert!(
        declassify_dropped() >= OVERSHOOT as u64,
        "every event past the cap must be counted: dropped = {}",
        declassify_dropped()
    );
    assert!(
        declassify_count() >= (AUDIT_CAP + OVERSHOOT) as u64,
        "the total counter must still see every call"
    );

    // Still capped after further calls — the bound is a ceiling, not a
    // high-water race.
    let dropped_before = declassify_dropped();
    let _ = TrustedLiteral::declassified(&tainted, "flood regression: audit bound");
    assert_eq!(declassify_events().len(), AUDIT_CAP);
    assert_eq!(declassify_dropped(), dropped_before + 1);
}
