//! Executable-oracle property suite for the interned lattice.
//!
//! The interned `LabelSet` (hash-consed handles, memoised `flows_to`,
//! precomputed projections) must be observationally identical to the naive
//! implementation it replaced. This suite re-implements that original as a
//! transparent `BTreeSet<Label>` model and drives both through random
//! operation sequences, comparing contents and every derived observation
//! after each step — so any divergence introduced by interning, memo
//! caching or projection precomputation shows up as a counterexample.

use std::collections::BTreeSet;

use proptest::prelude::*;
use safeweb_labels::{Label, LabelKind, LabelSet, Privilege, PrivilegeSet};

/// The reference model: the straightforward `BTreeSet` semantics the
/// interned implementation must reproduce.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Model {
    labels: BTreeSet<Label>,
}

impl Model {
    fn from_labels(labels: &[Label]) -> Model {
        Model {
            labels: labels.iter().cloned().collect(),
        }
    }

    fn insert(&mut self, label: Label) {
        self.labels.insert(label);
    }

    fn remove(&mut self, label: &Label) {
        self.labels.remove(label);
    }

    fn union(&self, other: &Model) -> Model {
        Model {
            labels: self.labels.union(&other.labels).cloned().collect(),
        }
    }

    fn intersection(&self, other: &Model) -> Model {
        Model {
            labels: self.labels.intersection(&other.labels).cloned().collect(),
        }
    }

    /// §4.1 combination: confidentiality union, integrity intersection.
    fn combine(&self, other: &Model) -> Model {
        let labels = self
            .labels
            .union(&other.labels)
            .filter(|l| l.is_confidentiality())
            .chain(
                self.labels
                    .intersection(&other.labels)
                    .filter(|l| l.is_integrity()),
            )
            .cloned()
            .collect();
        Model { labels }
    }

    fn flows_to(&self, privileges: &PrivilegeSet) -> bool {
        self.labels
            .iter()
            .filter(|l| l.is_confidentiality())
            .all(|l| privileges.has_clearance(l))
    }

    fn filter_kind(&self, kind: LabelKind) -> Model {
        Model {
            labels: self
                .labels
                .iter()
                .filter(|l| l.kind() == kind)
                .cloned()
                .collect(),
        }
    }

    fn blocking(&self, privileges: &PrivilegeSet) -> Vec<Label> {
        self.labels
            .iter()
            .filter(|l| l.is_confidentiality() && !privileges.has_clearance(l))
            .cloned()
            .collect()
    }
}

/// One step of a random operation sequence, applied to both sides.
#[derive(Debug, Clone)]
enum Op {
    Insert(Label),
    Remove(Label),
    Union(Vec<Label>),
    Intersection(Vec<Label>),
    Combine(Vec<Label>),
    Declassify(Label),
    Endorse(Label),
}

fn arb_label() -> impl Strategy<Value = Label> {
    let kind = prop_oneof![Just(LabelKind::Confidentiality), Just(LabelKind::Integrity)];
    let authority = prop_oneof![Just("ecric.org.uk"), Just("nhs.uk")];
    let path = prop_oneof![
        Just("patient/1".to_string()),
        Just("patient/2".to_string()),
        Just("mdt/a".to_string()),
        Just("mdt/b".to_string()),
        Just("region/east".to_string()),
        Just("ok".to_string()),
    ];
    (kind, authority, path).prop_map(|(k, a, p)| Label::new(k, a, &p).unwrap())
}

fn arb_labels() -> impl Strategy<Value = Vec<Label>> {
    proptest::collection::vec(arb_label(), 0..5)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_label().prop_map(Op::Insert),
        arb_label().prop_map(Op::Remove),
        arb_labels().prop_map(Op::Union),
        arb_labels().prop_map(Op::Intersection),
        arb_labels().prop_map(Op::Combine),
        arb_label().prop_map(Op::Declassify),
        arb_label().prop_map(Op::Endorse),
    ]
}

/// A privilege set granting clearance+declassify+endorse over `labels`, so
/// declassify/endorse ops in the random walk mostly succeed.
fn all_privileges(labels: &[Label]) -> PrivilegeSet {
    let mut privs = PrivilegeSet::new();
    for label in labels {
        if label.is_confidentiality() {
            privs.grant(Privilege::clearance(label.clone()));
            privs.grant(Privilege::declassify(label.clone()));
        } else {
            privs.grant(Privilege::endorse(label.clone()));
        }
    }
    privs
}

fn arb_privileges() -> impl Strategy<Value = PrivilegeSet> {
    proptest::collection::vec(arb_label(), 0..5).prop_map(|labels| {
        labels
            .into_iter()
            .filter(|l| l.is_confidentiality())
            .map(Privilege::clearance)
            .collect::<PrivilegeSet>()
    })
}

/// Every observation the two implementations share, compared in one place.
fn assert_agrees(set: &LabelSet, model: &Model, probes: &[PrivilegeSet]) {
    let got: Vec<Label> = set.iter().cloned().collect();
    let want: Vec<Label> = model.labels.iter().cloned().collect();
    assert_eq!(got, want, "contents diverged");
    assert_eq!(set.len(), model.labels.len());
    assert_eq!(set.is_empty(), model.labels.is_empty());

    let conf: Vec<Label> = set.confidentiality().iter().cloned().collect();
    let conf_model: Vec<Label> = model
        .filter_kind(LabelKind::Confidentiality)
        .labels
        .into_iter()
        .collect();
    assert_eq!(conf, conf_model, "confidentiality projection diverged");
    let int: Vec<Label> = set.integrity().iter().cloned().collect();
    let int_model: Vec<Label> = model
        .filter_kind(LabelKind::Integrity)
        .labels
        .into_iter()
        .collect();
    assert_eq!(int, int_model, "integrity projection diverged");

    for privs in probes {
        assert_eq!(
            set.flows_to(privs),
            model.flows_to(privs),
            "flows_to diverged for {privs}"
        );
        assert_eq!(
            set.blocking_labels(privs),
            model.blocking(privs),
            "blocking_labels diverged for {privs}"
        );
    }
}

proptest! {
    /// The interned implementation tracks the BTreeSet model through
    /// arbitrary operation sequences, under every shared observation —
    /// including the memoised `flows_to`, probed repeatedly so both the
    /// memo-miss and memo-hit paths are exercised.
    #[test]
    fn interned_lattice_matches_btreeset_oracle(
        init in arb_labels(),
        ops in proptest::collection::vec(arb_op(), 0..12),
        probes in proptest::collection::vec(arb_privileges(), 1..4),
    ) {
        let mut set = LabelSet::from_iter(init.clone());
        let mut model = Model::from_labels(&init);
        assert_agrees(&set, &model, &probes);

        for op in ops {
            match op {
                Op::Insert(label) => {
                    set.insert(label.clone());
                    model.insert(label);
                }
                Op::Remove(label) => {
                    set.remove_unchecked(&label);
                    model.remove(&label);
                }
                Op::Union(labels) => {
                    set = set.union(&LabelSet::from_iter(labels.clone()));
                    model = model.union(&Model::from_labels(&labels));
                }
                Op::Intersection(labels) => {
                    set = set.intersection(&LabelSet::from_iter(labels.clone()));
                    model = model.intersection(&Model::from_labels(&labels));
                }
                Op::Combine(labels) => {
                    set = set.combine(&LabelSet::from_iter(labels.clone()));
                    model = model.combine(&Model::from_labels(&labels));
                }
                Op::Declassify(label) => {
                    let privs = all_privileges(std::slice::from_ref(&label));
                    // Both sides remove iff the call succeeds; failure (an
                    // integrity label) must leave the set untouched.
                    if set.declassify(&label, &privs).is_ok() {
                        model.remove(&label);
                    }
                }
                Op::Endorse(label) => {
                    let privs = all_privileges(std::slice::from_ref(&label));
                    if set.endorse(&label, &privs).is_ok() {
                        model.insert(label);
                    }
                }
            }
            assert_agrees(&set, &model, &probes);
        }

        // Probe flows_to twice more: the second round is guaranteed to be
        // memo hits and must still agree with the model.
        assert_agrees(&set, &model, &probes);
    }

    /// Interned identity is extensional: two sets built by different
    /// operation orders have equal ids iff the model says their contents
    /// are equal.
    #[test]
    fn id_equality_is_content_equality(a in arb_labels(), b in arb_labels()) {
        let sa = LabelSet::from_iter(a.clone());
        let sb = LabelSet::from_iter(b.clone());
        let ma = Model::from_labels(&a);
        let mb = Model::from_labels(&b);
        prop_assert_eq!(sa.id() == sb.id(), ma == mb);
        prop_assert_eq!(sa == sb, ma == mb);
    }
}
