//! Property-based tests for the label lattice: the `combine` operation must
//! preserve every flow restriction of its inputs, behave like a lattice
//! join on confidentiality, and `flows_to` must be monotone.

use proptest::prelude::*;
use safeweb_labels::{Label, LabelKind, LabelSet, Privilege, PrivilegeSet};

fn arb_label() -> impl Strategy<Value = Label> {
    let kind = prop_oneof![Just(LabelKind::Confidentiality), Just(LabelKind::Integrity)];
    let authority = prop_oneof![Just("ecric.org.uk"), Just("nhs.uk"), Just("lab.org")];
    let path = prop_oneof![
        Just("patient/1".to_string()),
        Just("patient/2".to_string()),
        Just("mdt/a".to_string()),
        Just("mdt/b".to_string()),
        Just("region/east".to_string()),
        Just("".to_string()),
    ];
    (kind, authority, path).prop_map(|(k, a, p)| Label::new(k, a, &p).unwrap())
}

fn arb_label_set() -> impl Strategy<Value = LabelSet> {
    proptest::collection::vec(arb_label(), 0..6).prop_map(LabelSet::from_iter)
}

fn arb_privileges() -> impl Strategy<Value = PrivilegeSet> {
    proptest::collection::vec(arb_label(), 0..6).prop_map(|labels| {
        labels
            .into_iter()
            .map(Privilege::clearance)
            .collect::<PrivilegeSet>()
    })
}

proptest! {
    /// Confidentiality composition is a join: commutative, associative,
    /// idempotent.
    #[test]
    fn combine_conf_is_commutative(a in arb_label_set(), b in arb_label_set()) {
        prop_assert_eq!(a.combine(&b).confidentiality(), b.combine(&a).confidentiality());
    }

    #[test]
    fn combine_int_is_commutative(a in arb_label_set(), b in arb_label_set()) {
        prop_assert_eq!(a.combine(&b).integrity(), b.combine(&a).integrity());
    }

    #[test]
    fn combine_is_associative(a in arb_label_set(), b in arb_label_set(), c in arb_label_set()) {
        prop_assert_eq!(a.combine(&b).combine(&c), a.combine(&b.combine(&c)));
    }

    #[test]
    fn combine_is_idempotent(a in arb_label_set()) {
        prop_assert_eq!(a.combine(&a), a);
    }

    /// Sticky confidentiality: the combination carries *every*
    /// confidentiality label of both inputs.
    #[test]
    fn combine_preserves_conf_restrictions(a in arb_label_set(), b in arb_label_set()) {
        let c = a.combine(&b);
        for l in a.confidentiality().iter().chain(b.confidentiality().iter()) {
            prop_assert!(c.contains(l));
        }
    }

    /// Fragile integrity: the combination never claims integrity both inputs
    /// did not have.
    #[test]
    fn combine_never_invents_integrity(a in arb_label_set(), b in arb_label_set()) {
        let c = a.combine(&b);
        for l in c.integrity().iter() {
            prop_assert!(a.contains(l) && b.contains(l));
        }
    }

    /// If the combined set may flow somewhere, each input on its own may
    /// flow there too (combine is restriction-monotone).
    #[test]
    fn flow_of_combination_implies_flow_of_inputs(
        a in arb_label_set(),
        b in arb_label_set(),
        privs in arb_privileges(),
    ) {
        let c = a.combine(&b);
        if c.flows_to(&privs) {
            prop_assert!(a.flows_to(&privs));
            prop_assert!(b.flows_to(&privs));
        }
    }

    /// Granting more privileges never blocks a previously allowed flow.
    #[test]
    fn flows_to_is_monotone_in_privileges(
        set in arb_label_set(),
        privs in arb_privileges(),
        extra in arb_label(),
    ) {
        if set.flows_to(&privs) {
            let mut bigger = privs;
            bigger.grant(Privilege::clearance(extra));
            prop_assert!(set.flows_to(&bigger));
        }
    }

    /// Subset label sets are never harder to release than supersets.
    #[test]
    fn flow_is_antitone_in_labels(
        a in arb_label_set(),
        b in arb_label_set(),
        privs in arb_privileges(),
    ) {
        if a.is_subset(&b) && b.flows_to(&privs) {
            prop_assert!(a.flows_to(&privs));
        }
    }

    /// Wire encoding round-trips exactly.
    #[test]
    fn wire_roundtrip(set in arb_label_set()) {
        let wire = set.to_wire();
        prop_assert_eq!(LabelSet::from_wire(&wire).unwrap(), set);
    }

    /// Label URI parsing round-trips exactly.
    #[test]
    fn label_uri_roundtrip(label in arb_label()) {
        let uri = label.to_uri();
        prop_assert_eq!(uri.parse::<Label>().unwrap(), label);
    }

    /// Declassification with privilege removes exactly the targeted label
    /// and cannot make the flow *less* permitted.
    #[test]
    fn declassify_only_removes_target(set in arb_label_set(), target in arb_label()) {
        prop_assume!(target.is_confidentiality());
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::declassify(target.clone()));
        let mut after = set;
        after.declassify(&target, &privs).unwrap();
        prop_assert!(!after.contains(&target));
        for l in set.iter() {
            if *l != target {
                prop_assert!(after.contains(l));
            }
        }
    }
}
