//! Privileges over labels (§4.1).
//!
//! Two privileges govern confidentiality labels: **clearance** (the right to
//! receive data protected by a label) and **declassification** (the right to
//! remove the label, making the data public). The integrity duals are
//! **low-integrity clearance** (the right to read unendorsed data) and
//! **endorsement** (the right to attach an integrity label).
//!
//! Like [`crate::LabelSet`], a [`PrivilegeSet`] is an interned `Copy`
//! handle: its [`PrivilegeSetId`] is the second
//! half of the memo key that makes repeated
//! [`crate::LabelSet::flows_to`] checks one cache lookup.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use crate::error::ParseLabelError;
use crate::intern::{self, PrivRepr, PrivilegeSetId};
use crate::label::Label;
use crate::pattern::LabelPattern;

/// The action a privilege permits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrivilegeKind {
    /// Receive data carrying a confidentiality label.
    Clearance,
    /// Remove a confidentiality label from data.
    Declassify,
    /// Attach an integrity label to data.
    Endorse,
}

impl PrivilegeKind {
    /// Keyword used in policy files (`clearance`, `declassify`, `endorse`).
    pub fn keyword(self) -> &'static str {
        match self {
            PrivilegeKind::Clearance => "clearance",
            PrivilegeKind::Declassify => "declassify",
            PrivilegeKind::Endorse => "endorse",
        }
    }
}

impl fmt::Display for PrivilegeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

impl FromStr for PrivilegeKind {
    type Err = ParseLabelError;

    fn from_str(s: &str) -> Result<PrivilegeKind, ParseLabelError> {
        match s {
            "clearance" => Ok(PrivilegeKind::Clearance),
            "declassify" => Ok(PrivilegeKind::Declassify),
            "endorse" => Ok(PrivilegeKind::Endorse),
            other => Err(ParseLabelError::new(format!(
                "unknown privilege kind {other:?}"
            ))),
        }
    }
}

/// A single privilege: the right to perform [`PrivilegeKind`] on every label
/// matched by a [`LabelPattern`].
///
/// Patterns allow policies like "the storage unit may declassify any MDT
/// label" (`declassify label:conf:ecric.org.uk/mdt/*`) without enumerating
/// every MDT.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Privilege {
    kind: PrivilegeKind,
    pattern: LabelPattern,
}

impl Privilege {
    /// Creates a privilege of `kind` over all labels matching `pattern`.
    pub fn new(kind: PrivilegeKind, pattern: LabelPattern) -> Privilege {
        Privilege { kind, pattern }
    }

    /// Clearance over exactly `label`.
    pub fn clearance(label: Label) -> Privilege {
        Privilege::new(PrivilegeKind::Clearance, LabelPattern::exact(label))
    }

    /// Declassification over exactly `label`.
    pub fn declassify(label: Label) -> Privilege {
        Privilege::new(PrivilegeKind::Declassify, LabelPattern::exact(label))
    }

    /// Endorsement over exactly `label`.
    pub fn endorse(label: Label) -> Privilege {
        Privilege::new(PrivilegeKind::Endorse, LabelPattern::exact(label))
    }

    /// The permitted action.
    pub fn kind(&self) -> PrivilegeKind {
        self.kind
    }

    /// The labels this privilege covers.
    pub fn pattern(&self) -> &LabelPattern {
        &self.pattern
    }

    /// Whether this privilege permits `kind` on `label`.
    pub fn permits(&self, kind: PrivilegeKind, label: &Label) -> bool {
        self.kind == kind && self.pattern.matches(label)
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.pattern)
    }
}

/// The set of privileges held by a principal (a unit in the backend or an
/// authenticated user in the frontend).
///
/// Interned and `Copy`: equality is one [`PrivilegeSetId`] compare, and the
/// id keys per-clearance caches (the `flows_to` memo, the frontend's
/// rendered-view cache). "Mutations" such as [`PrivilegeSet::grant`]
/// re-intern and re-point the handle.
///
/// ```
/// use safeweb_labels::{Label, Privilege, PrivilegeSet};
///
/// let mut privs = PrivilegeSet::new();
/// privs.grant(Privilege::clearance(Label::conf("ecric.org.uk", "mdt/a")));
/// assert!(privs.has_clearance(&Label::conf("ecric.org.uk", "mdt/a")));
/// assert!(!privs.has_clearance(&Label::conf("ecric.org.uk", "mdt/b")));
/// ```
#[derive(Clone, Copy)]
pub struct PrivilegeSet {
    repr: &'static PrivRepr,
}

impl PrivilegeSet {
    /// Creates an empty privilege set (may only receive public data).
    pub fn new() -> PrivilegeSet {
        PrivilegeSet {
            repr: intern::intern_sorted_privileges(Vec::new()),
        }
    }

    /// Interns an arbitrary (possibly unsorted, duplicated) privilege list.
    fn from_vec(privileges: Vec<Privilege>) -> PrivilegeSet {
        let canonical: BTreeSet<Privilege> = privileges.into_iter().collect();
        PrivilegeSet {
            repr: intern::intern_sorted_privileges(canonical.into_iter().collect()),
        }
    }

    /// The interned identity of this set. Equal ids ⇔ equal sets;
    /// process-local, never on the wire.
    pub fn id(&self) -> PrivilegeSetId {
        self.repr.id
    }

    /// Number of distinct privilege sets interned in this process.
    pub fn interned_count() -> usize {
        intern::interned_priv_count()
    }

    /// Grants a privilege. Returns `true` if it was newly added.
    pub fn grant(&mut self, privilege: Privilege) -> bool {
        match self.repr.privileges.binary_search(&privilege) {
            Ok(_) => false,
            Err(pos) => {
                let mut privileges = self.repr.privileges.to_vec();
                privileges.insert(pos, privilege);
                self.repr = intern::intern_sorted_privileges(privileges);
                true
            }
        }
    }

    /// Revokes an exact privilege previously granted. Returns `true` if it
    /// was present.
    pub fn revoke(&mut self, privilege: &Privilege) -> bool {
        match self.repr.privileges.binary_search(privilege) {
            Err(_) => false,
            Ok(pos) => {
                let mut privileges = self.repr.privileges.to_vec();
                privileges.remove(pos);
                self.repr = intern::intern_sorted_privileges(privileges);
                true
            }
        }
    }

    /// Whether any held privilege permits `kind` on `label`.
    pub fn permits(&self, kind: PrivilegeKind, label: &Label) -> bool {
        self.repr.privileges.iter().any(|p| p.permits(kind, label))
    }

    /// Whether the principal may receive data labelled with `label`.
    ///
    /// Declassification subsumes clearance: a principal that may *remove* a
    /// label may certainly *see* data carrying it.
    pub fn has_clearance(&self, label: &Label) -> bool {
        self.permits(PrivilegeKind::Clearance, label)
            || self.permits(PrivilegeKind::Declassify, label)
    }

    /// Whether the principal may remove `label` from data.
    pub fn can_declassify(&self, label: &Label) -> bool {
        self.permits(PrivilegeKind::Declassify, label)
    }

    /// Whether the principal may attach integrity `label` to data.
    pub fn can_endorse(&self, label: &Label) -> bool {
        self.permits(PrivilegeKind::Endorse, label)
    }

    /// Iterates over the held privileges in deterministic order.
    pub fn iter(&self) -> std::slice::Iter<'static, Privilege> {
        self.repr.privileges.iter()
    }

    /// Number of privileges held.
    pub fn len(&self) -> usize {
        self.repr.privileges.len()
    }

    /// Whether the set holds no privileges.
    pub fn is_empty(&self) -> bool {
        self.repr.privileges.is_empty()
    }

    /// Merges all privileges of `other` into `self`.
    pub fn merge(&mut self, other: &PrivilegeSet) {
        if self.id() == other.id() || other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = *other;
            return;
        }
        let mut privileges = self.repr.privileges.to_vec();
        privileges.extend(other.iter().cloned());
        *self = PrivilegeSet::from_vec(privileges);
    }
}

impl Default for PrivilegeSet {
    fn default() -> PrivilegeSet {
        PrivilegeSet::new()
    }
}

impl PartialEq for PrivilegeSet {
    fn eq(&self, other: &PrivilegeSet) -> bool {
        self.repr.id == other.repr.id
    }
}

impl Eq for PrivilegeSet {}

impl Hash for PrivilegeSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.repr.id.hash(state);
    }
}

impl PartialOrd for PrivilegeSet {
    fn partial_cmp(&self, other: &PrivilegeSet) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PrivilegeSet {
    fn cmp(&self, other: &PrivilegeSet) -> Ordering {
        if self.repr.id == other.repr.id {
            return Ordering::Equal;
        }
        self.repr.privileges.cmp(&other.repr.privileges)
    }
}

impl fmt::Debug for PrivilegeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PrivilegeSet({} {self})", self.id())
    }
}

impl FromIterator<Privilege> for PrivilegeSet {
    fn from_iter<I: IntoIterator<Item = Privilege>>(iter: I) -> PrivilegeSet {
        PrivilegeSet::from_vec(iter.into_iter().collect())
    }
}

impl Extend<Privilege> for PrivilegeSet {
    fn extend<I: IntoIterator<Item = Privilege>>(&mut self, iter: I) {
        let novel: Vec<Privilege> = iter
            .into_iter()
            .filter(|p| self.repr.privileges.binary_search(p).is_err())
            .collect();
        if novel.is_empty() {
            return;
        }
        let mut privileges = self.repr.privileges.to_vec();
        privileges.extend(novel);
        *self = PrivilegeSet::from_vec(privileges);
    }
}

impl fmt::Display for PrivilegeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.iter().map(|p| p.to_string()).collect();
        write!(f, "[{}]", parts.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mdt(name: &str) -> Label {
        Label::conf("ecric.org.uk", &format!("mdt/{name}"))
    }

    #[test]
    fn declassify_implies_clearance() {
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::declassify(mdt("a")));
        assert!(privs.has_clearance(&mdt("a")));
        assert!(privs.can_declassify(&mdt("a")));
    }

    #[test]
    fn clearance_does_not_imply_declassify() {
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::clearance(mdt("a")));
        assert!(privs.has_clearance(&mdt("a")));
        assert!(!privs.can_declassify(&mdt("a")));
    }

    #[test]
    fn wildcard_privilege_covers_all_mdts() {
        let pattern: LabelPattern = "label:conf:ecric.org.uk/mdt/*".parse().unwrap();
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::new(PrivilegeKind::Declassify, pattern));
        assert!(privs.can_declassify(&mdt("a")));
        assert!(privs.can_declassify(&mdt("b")));
        assert!(!privs.can_declassify(&Label::conf("ecric.org.uk", "patient/1")));
    }

    #[test]
    fn revoke_removes_privilege() {
        let mut privs = PrivilegeSet::new();
        let p = Privilege::clearance(mdt("a"));
        privs.grant(p.clone());
        assert!(privs.revoke(&p));
        assert!(!privs.has_clearance(&mdt("a")));
        assert!(!privs.revoke(&p));
    }

    #[test]
    fn merge_unions_privileges() {
        let mut a = PrivilegeSet::new();
        a.grant(Privilege::clearance(mdt("a")));
        let mut b = PrivilegeSet::new();
        b.grant(Privilege::clearance(mdt("b")));
        a.merge(&b);
        assert!(a.has_clearance(&mdt("a")));
        assert!(a.has_clearance(&mdt("b")));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn endorse_is_separate_from_conf_privileges() {
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::endorse(Label::int("ecric.org.uk", "mdt")));
        assert!(privs.can_endorse(&Label::int("ecric.org.uk", "mdt")));
        assert!(!privs.has_clearance(&mdt("a")));
    }

    #[test]
    fn privilege_kind_parse_roundtrip() {
        for kind in [
            PrivilegeKind::Clearance,
            PrivilegeKind::Declassify,
            PrivilegeKind::Endorse,
        ] {
            assert_eq!(kind.keyword().parse::<PrivilegeKind>().unwrap(), kind);
        }
        assert!("superuser".parse::<PrivilegeKind>().is_err());
    }

    #[test]
    fn equal_grants_share_one_identity() {
        let mut a = PrivilegeSet::new();
        a.grant(Privilege::clearance(mdt("a")));
        a.grant(Privilege::clearance(mdt("b")));
        let mut b = PrivilegeSet::new();
        b.grant(Privilege::clearance(mdt("b")));
        b.grant(Privilege::clearance(mdt("a")));
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
    }
}
