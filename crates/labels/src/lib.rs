//! # safeweb-labels
//!
//! The security-label model at the heart of SafeWeb (Hosek et al.,
//! Middleware 2011, §3–§4.1): URI-formatted confidentiality and integrity
//! labels, label sets with sticky/fragile composition, privileges
//! (clearance, declassification, endorsement) and the policy file that
//! assigns privileges to backend units and frontend users.
//!
//! ## Model
//!
//! * Data carries a [`LabelSet`]. An empty set means public data.
//! * **Confidentiality** labels are *sticky*: anything derived from labelled
//!   data keeps the label. Data may only flow to a principal whose
//!   [`PrivilegeSet`] holds **clearance** for every confidentiality label.
//!   Removing a label requires the **declassification** privilege.
//! * **Integrity** labels are *fragile*: derived data keeps an integrity
//!   label only if every input carried it. Attaching one requires the
//!   **endorsement** privilege.
//!
//! ## Example
//!
//! ```
//! use safeweb_labels::{Label, LabelSet, Privilege, PrivilegeSet};
//!
//! // A unit labels a patient record as it enters the system.
//! let patient = Label::conf("ecric.org.uk", "patient/33812769");
//! let record_labels = LabelSet::singleton(patient.clone());
//!
//! // The treating MDT holds clearance; another MDT does not.
//! let mut treating = PrivilegeSet::new();
//! treating.grant(Privilege::clearance(patient.clone()));
//! assert!(record_labels.flows_to(&treating));
//! assert!(!record_labels.flows_to(&PrivilegeSet::new()));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
mod intern;
mod label;
mod manager;
mod pattern;
mod policy;
mod privilege;
mod set;

pub use error::{ParseLabelError, ParsePolicyError};
pub use intern::{LabelSetId, PrivilegeSetId};
pub use label::{Label, LabelKind};
pub use manager::{DelegationError, DelegationId, LabelManager, Principal};
pub use pattern::LabelPattern;
pub use policy::{Policy, PrincipalKind, PrincipalPolicy};
pub use privilege::{Privilege, PrivilegeKind, PrivilegeSet};
pub use set::{DeclassifyError, EndorseError, LabelSet};
