//! The data-flow policy specification file (§4.1, §5.2).
//!
//! Privileges over labels are assigned to backend *units* and frontend
//! *users* through a policy file. The paper highlights that this file (and
//! the scripts editing it) is part of the audited trusted codebase, so the
//! format is deliberately small and line-oriented:
//!
//! ```text
//! # The storage unit may declassify every MDT label.
//! unit data_storage {
//!     privileged
//!     clearance  label:conf:ecric.org.uk/patient/*
//!     declassify label:conf:ecric.org.uk/mdt/*
//! }
//!
//! user mdt_addenbrookes {
//!     clearance label:conf:ecric.org.uk/mdt/addenbrookes
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use crate::error::ParsePolicyError;
use crate::pattern::LabelPattern;
use crate::privilege::{Privilege, PrivilegeKind, PrivilegeSet};

/// The two kinds of principal a policy can assign privileges to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrincipalKind {
    /// An event-processing unit in the backend.
    Unit,
    /// An authenticated web user in the frontend.
    User,
}

impl PrincipalKind {
    /// Policy-file keyword (`unit` / `user`).
    pub fn keyword(self) -> &'static str {
        match self {
            PrincipalKind::Unit => "unit",
            PrincipalKind::User => "user",
        }
    }
}

impl fmt::Display for PrincipalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One principal's entry in a [`Policy`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrincipalPolicy {
    privileged: bool,
    privileges: PrivilegeSet,
}

impl PrincipalPolicy {
    /// Creates an empty, unprivileged entry.
    pub fn new() -> PrincipalPolicy {
        PrincipalPolicy::default()
    }

    /// Whether the principal is a *privileged unit*: it runs outside the IFC
    /// jail with I/O access and may effectively declassify anything it is
    /// cleared to receive (§4.3). Meaningless for users.
    pub fn is_privileged(&self) -> bool {
        self.privileged
    }

    /// Marks the principal as privileged.
    pub fn set_privileged(&mut self, privileged: bool) {
        self.privileged = privileged;
    }

    /// The privileges granted to this principal.
    pub fn privileges(&self) -> &PrivilegeSet {
        &self.privileges
    }

    /// Grants an additional privilege.
    pub fn grant(&mut self, privilege: Privilege) {
        self.privileges.grant(privilege);
    }
}

/// A parsed policy file: privilege assignments for every named unit and
/// user.
///
/// ```
/// use safeweb_labels::{Label, Policy, PrincipalKind};
///
/// let text = "
/// unit storage {
///     privileged
///     declassify label:conf:ecric.org.uk/mdt/*
/// }
/// user mdt1 {
///     clearance label:conf:ecric.org.uk/mdt/one
/// }
/// ";
/// let policy: Policy = text.parse()?;
/// let privs = policy.privileges(PrincipalKind::User, "mdt1");
/// assert!(privs.has_clearance(&Label::conf("ecric.org.uk", "mdt/one")));
/// # Ok::<(), safeweb_labels::ParsePolicyError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Policy {
    entries: BTreeMap<(PrincipalKind, String), PrincipalPolicy>,
}

impl Policy {
    /// Creates an empty policy: nobody holds any privilege.
    pub fn new() -> Policy {
        Policy::default()
    }

    /// Returns the entry for a principal, creating it if absent.
    pub fn entry(&mut self, kind: PrincipalKind, name: &str) -> &mut PrincipalPolicy {
        self.entries.entry((kind, name.to_string())).or_default()
    }

    /// Looks up a principal's entry, if declared.
    pub fn get(&self, kind: PrincipalKind, name: &str) -> Option<&PrincipalPolicy> {
        self.entries.get(&(kind, name.to_string()))
    }

    /// The privileges of a principal; principals not mentioned in the policy
    /// hold no privileges at all (fail-closed).
    pub fn privileges(&self, kind: PrincipalKind, name: &str) -> PrivilegeSet {
        self.get(kind, name)
            .map(|e| *e.privileges())
            .unwrap_or_default()
    }

    /// Whether the named unit is declared `privileged`.
    pub fn is_privileged_unit(&self, name: &str) -> bool {
        self.get(PrincipalKind::Unit, name)
            .is_some_and(|e| e.is_privileged())
    }

    /// Iterates over all `(kind, name, entry)` triples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (PrincipalKind, &str, &PrincipalPolicy)> {
        self.entries.iter().map(|((k, n), e)| (*k, n.as_str(), e))
    }

    /// Number of declared principals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no principal is declared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialises the policy back to its file format.
    pub fn to_file_string(&self) -> String {
        let mut out = String::new();
        for ((kind, name), entry) in &self.entries {
            out.push_str(&format!("{kind} {name} {{\n"));
            if entry.is_privileged() {
                out.push_str("    privileged\n");
            }
            for p in entry.privileges().iter() {
                out.push_str(&format!("    {} {}\n", p.kind().keyword(), p.pattern()));
            }
            out.push_str("}\n");
        }
        out
    }
}

impl FromStr for Policy {
    type Err = ParsePolicyError;

    fn from_str(text: &str) -> Result<Policy, ParsePolicyError> {
        let mut policy = Policy::new();
        let mut current: Option<(PrincipalKind, String)> = None;

        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw_line.split_once('#') {
                Some((before, _comment)) => before.trim(),
                None => raw_line.trim(),
            };
            if line.is_empty() {
                continue;
            }

            if let Some((kind, name)) = &current {
                if line == "}" {
                    current = None;
                    continue;
                }
                let entry = policy.entry(*kind, name);
                if line == "privileged" {
                    if *kind != PrincipalKind::Unit {
                        return Err(ParsePolicyError::new(
                            lineno,
                            "only units can be declared privileged",
                        ));
                    }
                    entry.set_privileged(true);
                    continue;
                }
                let (keyword, rest) = line.split_once(char::is_whitespace).ok_or_else(|| {
                    ParsePolicyError::new(
                        lineno,
                        format!("expected `<privilege> <label>`: {line:?}"),
                    )
                })?;
                let priv_kind: PrivilegeKind = keyword
                    .parse()
                    .map_err(|e| ParsePolicyError::new(lineno, format!("{e}")))?;
                let pattern: LabelPattern = rest
                    .trim()
                    .parse()
                    .map_err(|e| ParsePolicyError::new(lineno, format!("{e}")))?;
                entry.grant(Privilege::new(priv_kind, pattern));
            } else {
                let stripped = line.strip_suffix('{').ok_or_else(|| {
                    ParsePolicyError::new(
                        lineno,
                        format!("expected `unit <name> {{` or `user <name> {{`: {line:?}"),
                    )
                })?;
                let mut parts = stripped.split_whitespace();
                let kind = match parts.next() {
                    Some("unit") => PrincipalKind::Unit,
                    Some("user") => PrincipalKind::User,
                    other => {
                        return Err(ParsePolicyError::new(
                            lineno,
                            format!("expected `unit` or `user`, found {other:?}"),
                        ))
                    }
                };
                let name = parts.next().ok_or_else(|| {
                    ParsePolicyError::new(lineno, "missing principal name before `{`")
                })?;
                if parts.next().is_some() {
                    return Err(ParsePolicyError::new(
                        lineno,
                        "unexpected tokens after principal name",
                    ));
                }
                if policy.get(kind, name).is_some() {
                    return Err(ParsePolicyError::new(
                        lineno,
                        format!("duplicate declaration of {kind} {name}"),
                    ));
                }
                current = Some((kind, name.to_string()));
                policy.entry(kind, name);
            }
        }

        if let Some((kind, name)) = current {
            return Err(ParsePolicyError::new(
                text.lines().count(),
                format!("unterminated block for {kind} {name} (missing `}}`)"),
            ));
        }
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    const SAMPLE: &str = "
# MDT portal policy
unit data_producer {
    privileged
    endorse label:int:ecric.org.uk/mdt
}

unit data_storage {
    privileged
    clearance  label:conf:ecric.org.uk/patient/*
    declassify label:conf:ecric.org.uk/mdt/*
}

unit aggregator {
    clearance label:conf:ecric.org.uk/mdt/*   # jailed unit
}

user mdt_addenbrookes {
    clearance label:conf:ecric.org.uk/mdt/addenbrookes
}
";

    #[test]
    fn parses_sample_policy() {
        let policy: Policy = SAMPLE.parse().unwrap();
        assert_eq!(policy.len(), 4);
        assert!(policy.is_privileged_unit("data_producer"));
        assert!(policy.is_privileged_unit("data_storage"));
        assert!(!policy.is_privileged_unit("aggregator"));
        assert!(!policy.is_privileged_unit("nonexistent"));

        let storage = policy.privileges(PrincipalKind::Unit, "data_storage");
        assert!(storage.can_declassify(&Label::conf("ecric.org.uk", "mdt/addenbrookes")));
        assert!(storage.has_clearance(&Label::conf("ecric.org.uk", "patient/42")));

        let user = policy.privileges(PrincipalKind::User, "mdt_addenbrookes");
        assert!(user.has_clearance(&Label::conf("ecric.org.uk", "mdt/addenbrookes")));
        assert!(!user.has_clearance(&Label::conf("ecric.org.uk", "mdt/papworth")));
        assert!(!user.can_declassify(&Label::conf("ecric.org.uk", "mdt/addenbrookes")));
    }

    #[test]
    fn unknown_principal_has_no_privileges() {
        let policy: Policy = SAMPLE.parse().unwrap();
        assert!(policy.privileges(PrincipalKind::User, "mallory").is_empty());
    }

    #[test]
    fn file_string_roundtrip() {
        let policy: Policy = SAMPLE.parse().unwrap();
        let text = policy.to_file_string();
        let again: Policy = text.parse().unwrap();
        assert_eq!(policy, again);
    }

    #[test]
    fn error_reports_line_number() {
        let err = "unit x {\n    teleport label:conf:a/b\n}"
            .parse::<Policy>()
            .unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("teleport"));
    }

    #[test]
    fn rejects_privileged_user() {
        let err = "user u {\n privileged \n}".parse::<Policy>().unwrap_err();
        assert!(err.to_string().contains("only units"));
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!("unit x {\n clearance label:conf:a/b\n"
            .parse::<Policy>()
            .is_err());
    }

    #[test]
    fn rejects_duplicate_principal() {
        let err = "unit x {\n}\nunit x {\n}".parse::<Policy>().unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let policy: Policy = "# nothing\n\n   # more\n".parse().unwrap();
        assert!(policy.is_empty());
    }
}
