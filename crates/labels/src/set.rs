//! Sets of security labels with the composition semantics of §4.1.
//!
//! When data is derived from several labelled inputs, the resulting label set
//! must preserve every flow restriction of the originals: confidentiality
//! labels are combined by **union** (sticky) while integrity labels are
//! combined by **intersection** (fragile).

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use crate::error::ParseLabelError;
use crate::label::{Label, LabelKind};
use crate::privilege::PrivilegeSet;

/// An immutable-by-default, ordered set of [`Label`]s.
///
/// ```
/// use safeweb_labels::{Label, LabelSet};
///
/// let patient = Label::conf("ecric.org.uk", "patient/1");
/// let mdt = Label::conf("ecric.org.uk", "mdt/addenbrookes");
/// let set = LabelSet::from_iter([patient.clone(), mdt]);
/// assert!(set.contains(&patient));
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelSet {
    labels: BTreeSet<Label>,
}

impl LabelSet {
    /// Creates an empty label set (public data).
    pub fn new() -> LabelSet {
        LabelSet::default()
    }

    /// Creates a set containing a single label.
    pub fn singleton(label: Label) -> LabelSet {
        let mut labels = BTreeSet::new();
        labels.insert(label);
        LabelSet { labels }
    }

    /// Whether the set contains no labels at all.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The number of labels in the set.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether `label` is a member of this set.
    pub fn contains(&self, label: &Label) -> bool {
        self.labels.contains(label)
    }

    /// Adds a label. Returns `true` if it was newly inserted.
    ///
    /// Adding confidentiality labels never requires privilege (it only makes
    /// data *more* restricted); removing them does — see
    /// [`LabelSet::declassify`].
    pub fn insert(&mut self, label: Label) -> bool {
        self.labels.insert(label)
    }

    /// Removes a label without any privilege check.
    ///
    /// This is a low-level operation used by the enforcement layers after
    /// they have verified the caller's declassification (or, for integrity
    /// labels, its endorsement-revocation) rights; application code should go
    /// through [`LabelSet::declassify`] instead.
    pub fn remove_unchecked(&mut self, label: &Label) -> bool {
        self.labels.remove(label)
    }

    /// Iterates over the labels in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = &Label> {
        self.labels.iter()
    }

    /// Returns only the confidentiality labels.
    pub fn confidentiality(&self) -> LabelSet {
        self.filter_kind(LabelKind::Confidentiality)
    }

    /// Returns only the integrity labels.
    pub fn integrity(&self) -> LabelSet {
        self.filter_kind(LabelKind::Integrity)
    }

    fn filter_kind(&self, kind: LabelKind) -> LabelSet {
        LabelSet {
            labels: self
                .labels
                .iter()
                .filter(|l| l.kind() == kind)
                .cloned()
                .collect(),
        }
    }

    /// Set union, irrespective of label kind.
    pub fn union(&self, other: &LabelSet) -> LabelSet {
        LabelSet {
            labels: self.labels.union(&other.labels).cloned().collect(),
        }
    }

    /// Set intersection, irrespective of label kind.
    pub fn intersection(&self, other: &LabelSet) -> LabelSet {
        LabelSet {
            labels: self.labels.intersection(&other.labels).cloned().collect(),
        }
    }

    /// Whether every label in `self` is also in `other`.
    pub fn is_subset(&self, other: &LabelSet) -> bool {
        self.labels.is_subset(&other.labels)
    }

    /// Combines the labels of two inputs into the label set of data derived
    /// from both, per §4.1: confidentiality is sticky (union), integrity is
    /// fragile (intersection).
    ///
    /// ```
    /// use safeweb_labels::{Label, LabelSet};
    ///
    /// let a = LabelSet::from_iter([Label::conf("e", "p/1"), Label::int("e", "ok")]);
    /// let b = LabelSet::from_iter([Label::conf("e", "p/2"), Label::int("e", "ok")]);
    /// let c = a.combine(&b);
    /// assert_eq!(c.confidentiality().len(), 2); // union
    /// assert_eq!(c.integrity().len(), 1);       // intersection
    /// ```
    pub fn combine(&self, other: &LabelSet) -> LabelSet {
        let conf = self.confidentiality().union(&other.confidentiality());
        let int = self.integrity().intersection(&other.integrity());
        conf.union(&int)
    }

    /// Whether data with this label set may flow to a principal holding
    /// `privileges`: every confidentiality label must be covered by a
    /// clearance privilege.
    ///
    /// Integrity labels never *block* a flow (they vouch for data rather than
    /// restrict it), so they are ignored here; consumers that require a given
    /// integrity label should check [`LabelSet::contains`] explicitly.
    pub fn flows_to(&self, privileges: &PrivilegeSet) -> bool {
        self.labels
            .iter()
            .filter(|l| l.is_confidentiality())
            .all(|l| privileges.has_clearance(l))
    }

    /// The confidentiality labels in `self` that `privileges` does **not**
    /// have clearance for — i.e. the reason a [`LabelSet::flows_to`] check
    /// fails. Empty when the flow is permitted.
    pub fn blocking_labels(&self, privileges: &PrivilegeSet) -> Vec<Label> {
        self.labels
            .iter()
            .filter(|l| l.is_confidentiality() && !privileges.has_clearance(l))
            .cloned()
            .collect()
    }

    /// Removes `label` from the set if `privileges` grants declassification
    /// (for confidentiality labels) over it.
    ///
    /// # Errors
    ///
    /// Returns [`DeclassifyError`] if the privilege is missing. Removing a
    /// label that is not present is a no-op and succeeds.
    pub fn declassify(
        &mut self,
        label: &Label,
        privileges: &PrivilegeSet,
    ) -> Result<(), DeclassifyError> {
        if !label.is_confidentiality() {
            return Err(DeclassifyError::NotConfidentiality(label.clone()));
        }
        if !privileges.can_declassify(label) {
            return Err(DeclassifyError::MissingPrivilege(label.clone()));
        }
        self.labels.remove(label);
        Ok(())
    }

    /// Adds `label` as an integrity endorsement if `privileges` grants
    /// endorsement over it.
    ///
    /// # Errors
    ///
    /// Returns [`EndorseError`] if the privilege is missing or the label is
    /// not an integrity label.
    pub fn endorse(
        &mut self,
        label: &Label,
        privileges: &PrivilegeSet,
    ) -> Result<(), EndorseError> {
        if !label.is_integrity() {
            return Err(EndorseError::NotIntegrity(label.clone()));
        }
        if !privileges.can_endorse(label) {
            return Err(EndorseError::MissingPrivilege(label.clone()));
        }
        self.labels.insert(label.clone());
        Ok(())
    }

    /// Encodes the set as a comma-separated list of label URIs in sorted
    /// order; the wire format used in STOMP headers and database documents.
    /// Returns an empty string for the empty set.
    pub fn to_wire(&self) -> String {
        let parts: Vec<String> = self.labels.iter().map(|l| l.to_string()).collect();
        parts.join(",")
    }

    /// Decodes a comma-separated list of label URIs, ignoring surrounding
    /// whitespace around each element. The empty string decodes to the empty
    /// set.
    ///
    /// # Errors
    ///
    /// Returns [`ParseLabelError`] if any element is not a valid label URI.
    pub fn from_wire(s: &str) -> Result<LabelSet, ParseLabelError> {
        let mut set = LabelSet::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            set.insert(part.parse()?);
        }
        Ok(set)
    }
}

impl FromIterator<Label> for LabelSet {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> LabelSet {
        LabelSet {
            labels: iter.into_iter().collect(),
        }
    }
}

impl Extend<Label> for LabelSet {
    fn extend<I: IntoIterator<Item = Label>>(&mut self, iter: I) {
        self.labels.extend(iter);
    }
}

impl<'a> IntoIterator for &'a LabelSet {
    type Item = &'a Label;
    type IntoIter = std::collections::btree_set::Iter<'a, Label>;

    fn into_iter(self) -> Self::IntoIter {
        self.labels.iter()
    }
}

impl IntoIterator for LabelSet {
    type Item = Label;
    type IntoIter = std::collections::btree_set::IntoIter<Label>;

    fn into_iter(self) -> Self::IntoIter {
        self.labels.into_iter()
    }
}

impl fmt::Display for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.to_wire())
    }
}

impl FromStr for LabelSet {
    type Err = ParseLabelError;

    fn from_str(s: &str) -> Result<LabelSet, ParseLabelError> {
        LabelSet::from_wire(s)
    }
}

/// Error returned by [`LabelSet::declassify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeclassifyError {
    /// The caller lacks the declassification privilege for this label.
    MissingPrivilege(Label),
    /// Declassification only applies to confidentiality labels.
    NotConfidentiality(Label),
}

impl fmt::Display for DeclassifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeclassifyError::MissingPrivilege(l) => {
                write!(f, "missing declassification privilege for {l}")
            }
            DeclassifyError::NotConfidentiality(l) => {
                write!(f, "cannot declassify non-confidentiality label {l}")
            }
        }
    }
}

impl std::error::Error for DeclassifyError {}

/// Error returned by [`LabelSet::endorse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndorseError {
    /// The caller lacks the endorsement privilege for this label.
    MissingPrivilege(Label),
    /// Endorsement only applies to integrity labels.
    NotIntegrity(Label),
}

impl fmt::Display for EndorseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndorseError::MissingPrivilege(l) => {
                write!(f, "missing endorsement privilege for {l}")
            }
            EndorseError::NotIntegrity(l) => {
                write!(f, "cannot endorse non-integrity label {l}")
            }
        }
    }
}

impl std::error::Error for EndorseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privilege::Privilege;

    fn conf(p: &str) -> Label {
        Label::conf("ecric.org.uk", p)
    }

    fn int(p: &str) -> Label {
        Label::int("ecric.org.uk", p)
    }

    #[test]
    fn combine_is_sticky_for_confidentiality() {
        let a = LabelSet::singleton(conf("patient/1"));
        let b = LabelSet::singleton(conf("patient/2"));
        let c = a.combine(&b);
        assert!(c.contains(&conf("patient/1")));
        assert!(c.contains(&conf("patient/2")));
    }

    #[test]
    fn combine_is_fragile_for_integrity() {
        let a = LabelSet::from_iter([int("mdt"), int("lab")]);
        let b = LabelSet::from_iter([int("mdt")]);
        let c = a.combine(&b);
        assert!(c.contains(&int("mdt")));
        assert!(!c.contains(&int("lab")));
    }

    #[test]
    fn empty_set_flows_anywhere() {
        assert!(LabelSet::new().flows_to(&PrivilegeSet::new()));
    }

    #[test]
    fn flow_requires_clearance_for_all_conf_labels() {
        let set = LabelSet::from_iter([conf("patient/1"), conf("patient/2")]);
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::clearance(conf("patient/1")));
        assert!(!set.flows_to(&privs));
        assert_eq!(set.blocking_labels(&privs), vec![conf("patient/2")]);
        privs.grant(Privilege::clearance(conf("patient/2")));
        assert!(set.flows_to(&privs));
        assert!(set.blocking_labels(&privs).is_empty());
    }

    #[test]
    fn integrity_labels_do_not_block_flow() {
        let set = LabelSet::singleton(int("mdt"));
        assert!(set.flows_to(&PrivilegeSet::new()));
    }

    #[test]
    fn declassify_requires_privilege() {
        let mut set = LabelSet::singleton(conf("patient/1"));
        let err = set
            .declassify(&conf("patient/1"), &PrivilegeSet::new())
            .unwrap_err();
        assert!(matches!(err, DeclassifyError::MissingPrivilege(_)));
        assert!(set.contains(&conf("patient/1")));

        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::declassify(conf("patient/1")));
        set.declassify(&conf("patient/1"), &privs).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn declassify_rejects_integrity_labels() {
        let mut set = LabelSet::singleton(int("mdt"));
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::declassify(conf("x")));
        assert!(matches!(
            set.declassify(&int("mdt"), &privs),
            Err(DeclassifyError::NotConfidentiality(_))
        ));
    }

    #[test]
    fn endorse_requires_privilege() {
        let mut set = LabelSet::new();
        assert!(matches!(
            set.endorse(&int("mdt"), &PrivilegeSet::new()),
            Err(EndorseError::MissingPrivilege(_))
        ));
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::endorse(int("mdt")));
        set.endorse(&int("mdt"), &privs).unwrap();
        assert!(set.contains(&int("mdt")));
    }

    #[test]
    fn wire_roundtrip() {
        let set = LabelSet::from_iter([conf("patient/1"), int("mdt"), conf("mdt/a")]);
        let wire = set.to_wire();
        let back = LabelSet::from_wire(&wire).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn wire_empty() {
        assert_eq!(LabelSet::new().to_wire(), "");
        assert_eq!(LabelSet::from_wire("").unwrap(), LabelSet::new());
        assert_eq!(LabelSet::from_wire("  ,  ").unwrap(), LabelSet::new());
    }

    #[test]
    fn wire_rejects_garbage() {
        assert!(LabelSet::from_wire("label:conf:a,nonsense").is_err());
    }
}
