//! Sets of security labels with the composition semantics of §4.1.
//!
//! When data is derived from several labelled inputs, the resulting label set
//! must preserve every flow restriction of the originals: confidentiality
//! labels are combined by **union** (sticky) while integrity labels are
//! combined by **intersection** (fragile).
//!
//! Since the interning redesign (ROADMAP item 1) a [`LabelSet`] is a `Copy`
//! handle onto a global hash-cons table: copying one
//! is a pointer copy, equality is one integer compare, and every lattice
//! operation returns another interned handle. "Mutating" methods such as
//! [`LabelSet::insert`] keep their historical signatures but re-intern and
//! re-point the handle rather than editing shared state.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use crate::error::ParseLabelError;
use crate::intern::{self, LabelSetId, SetRepr};
use crate::label::{Label, LabelKind};
use crate::privilege::PrivilegeSet;

/// An immutable, interned, ordered set of [`Label`]s.
///
/// Equality and hashing are by [`LabelSetId`] — one integer — which the
/// hash-cons table guarantees coincides with content equality. Ordering is
/// content-wise (lexicographic over the sorted labels) so sort orders stay
/// deterministic across processes.
///
/// ```
/// use safeweb_labels::{Label, LabelSet};
///
/// let patient = Label::conf("ecric.org.uk", "patient/1");
/// let mdt = Label::conf("ecric.org.uk", "mdt/addenbrookes");
/// let set = LabelSet::from_iter([patient.clone(), mdt.clone()]);
/// assert!(set.contains(&patient));
/// assert_eq!(set.len(), 2);
/// // Structurally equal sets share one identity.
/// assert_eq!(set.id(), LabelSet::from_iter([mdt, patient]).id());
/// ```
#[derive(Clone, Copy)]
pub struct LabelSet {
    repr: &'static SetRepr,
}

impl LabelSet {
    /// Creates an empty label set (public data).
    pub fn new() -> LabelSet {
        LabelSet {
            repr: intern::intern_sorted_labels(Vec::new()),
        }
    }

    /// Creates a set containing a single label.
    pub fn singleton(label: Label) -> LabelSet {
        LabelSet {
            repr: intern::intern_sorted_labels(vec![label]),
        }
    }

    /// Interns an arbitrary (possibly unsorted, possibly duplicated) list.
    fn from_vec(mut labels: Vec<Label>) -> LabelSet {
        labels.sort();
        labels.dedup();
        LabelSet {
            repr: intern::intern_sorted_labels(labels),
        }
    }

    /// The interned identity of this set. Equal ids ⇔ equal sets; ids are
    /// process-local and never appear on the wire.
    pub fn id(&self) -> LabelSetId {
        self.repr.id
    }

    /// Number of distinct label sets interned in this process — the
    /// hash-cons table only grows with *novel* sets, so steady-state
    /// workloads stop growing it (asserted by tests and the labels bench).
    pub fn interned_count() -> usize {
        intern::interned_set_count()
    }

    /// Whether the set contains no labels at all.
    pub fn is_empty(&self) -> bool {
        self.repr.labels.is_empty()
    }

    /// The number of labels in the set.
    pub fn len(&self) -> usize {
        self.repr.labels.len()
    }

    /// Whether `label` is a member of this set.
    pub fn contains(&self, label: &Label) -> bool {
        self.repr.labels.binary_search(label).is_ok()
    }

    /// Adds a label, re-pointing this handle at the interned result.
    /// Returns `true` if it was newly inserted.
    ///
    /// Adding confidentiality labels never requires privilege (it only makes
    /// data *more* restricted); removing them does — see
    /// [`LabelSet::declassify`].
    pub fn insert(&mut self, label: Label) -> bool {
        match self.repr.labels.binary_search(&label) {
            Ok(_) => false,
            Err(pos) => {
                let mut labels = self.repr.labels.to_vec();
                labels.insert(pos, label);
                self.repr = intern::intern_sorted_labels(labels);
                true
            }
        }
    }

    /// Removes a label without any privilege check.
    ///
    /// This is a low-level operation used by the enforcement layers after
    /// they have verified the caller's declassification (or, for integrity
    /// labels, its endorsement-revocation) rights; application code should go
    /// through [`LabelSet::declassify`] instead.
    pub fn remove_unchecked(&mut self, label: &Label) -> bool {
        match self.repr.labels.binary_search(label) {
            Err(_) => false,
            Ok(pos) => {
                let mut labels = self.repr.labels.to_vec();
                labels.remove(pos);
                self.repr = intern::intern_sorted_labels(labels);
                true
            }
        }
    }

    /// Iterates over the labels in deterministic (sorted) order.
    pub fn iter(&self) -> std::slice::Iter<'static, Label> {
        self.repr.labels.iter()
    }

    /// Returns the interned projection onto the confidentiality labels.
    ///
    /// Computed once when the set is first interned; calling this is a
    /// pointer read, never an allocation.
    pub fn confidentiality(&self) -> LabelSet {
        LabelSet {
            repr: intern::projection(self.repr, LabelKind::Confidentiality),
        }
    }

    /// Returns the interned projection onto the integrity labels.
    ///
    /// Computed once when the set is first interned; calling this is a
    /// pointer read, never an allocation.
    pub fn integrity(&self) -> LabelSet {
        LabelSet {
            repr: intern::projection(self.repr, LabelKind::Integrity),
        }
    }

    /// Set union, irrespective of label kind.
    pub fn union(&self, other: &LabelSet) -> LabelSet {
        if self.id() == other.id() || other.is_empty() {
            return *self;
        }
        if self.is_empty() {
            return *other;
        }
        if other.is_subset(self) {
            return *self;
        }
        if self.is_subset(other) {
            return *other;
        }
        let mut merged = Vec::with_capacity(self.len() + other.len());
        let (mut a, mut b) = (self.iter().peekable(), other.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => match x.cmp(y) {
                    Ordering::Less => merged.push(a.next().unwrap().clone()),
                    Ordering::Greater => merged.push(b.next().unwrap().clone()),
                    Ordering::Equal => {
                        merged.push(a.next().unwrap().clone());
                        b.next();
                    }
                },
                (Some(_), None) => merged.push(a.next().unwrap().clone()),
                (None, Some(_)) => merged.push(b.next().unwrap().clone()),
                (None, None) => break,
            }
        }
        LabelSet {
            repr: intern::intern_sorted_labels(merged),
        }
    }

    /// Set intersection, irrespective of label kind.
    pub fn intersection(&self, other: &LabelSet) -> LabelSet {
        if self.id() == other.id() {
            return *self;
        }
        if self.is_empty() || other.is_empty() {
            return LabelSet::new();
        }
        if self.is_subset(other) {
            return *self;
        }
        if other.is_subset(self) {
            return *other;
        }
        let common: Vec<Label> = self.iter().filter(|l| other.contains(l)).cloned().collect();
        LabelSet {
            repr: intern::intern_sorted_labels(common),
        }
    }

    /// Whether every label in `self` is also in `other`.
    pub fn is_subset(&self, other: &LabelSet) -> bool {
        if self.id() == other.id() || self.is_empty() {
            return true;
        }
        if self.len() > other.len() {
            return false;
        }
        let mut candidates = other.iter();
        'outer: for needle in self.iter() {
            for candidate in candidates.by_ref() {
                match candidate.cmp(needle) {
                    Ordering::Less => continue,
                    Ordering::Equal => continue 'outer,
                    Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Combines the labels of two inputs into the label set of data derived
    /// from both, per §4.1: confidentiality is sticky (union), integrity is
    /// fragile (intersection).
    ///
    /// ```
    /// use safeweb_labels::{Label, LabelSet};
    ///
    /// let a = LabelSet::from_iter([Label::conf("e", "p/1"), Label::int("e", "ok")]);
    /// let b = LabelSet::from_iter([Label::conf("e", "p/2"), Label::int("e", "ok")]);
    /// let c = a.combine(&b);
    /// assert_eq!(c.confidentiality().len(), 2); // union
    /// assert_eq!(c.integrity().len(), 1);       // intersection
    /// ```
    pub fn combine(&self, other: &LabelSet) -> LabelSet {
        if self.id() == other.id() {
            return *self;
        }
        let conf = self.confidentiality().union(&other.confidentiality());
        let int = self.integrity().intersection(&other.integrity());
        conf.union(&int)
    }

    /// Whether data with this label set may flow to a principal holding
    /// `privileges`: every confidentiality label must be covered by a
    /// clearance privilege.
    ///
    /// Integrity labels never *block* a flow (they vouch for data rather than
    /// restrict it), so they are ignored here; consumers that require a given
    /// integrity label should check [`LabelSet::contains`] explicitly.
    ///
    /// The fast path is one counter check plus one memo lookup on
    /// `(LabelSetId, PrivilegeSetId)` — no allocation. Verdicts are memoised
    /// forever because both operands are interned and immutable.
    pub fn flows_to(&self, privileges: &PrivilegeSet) -> bool {
        if self.repr.conf_count == 0 {
            return true;
        }
        let key = (self.id(), privileges.id());
        if let Some(verdict) = intern::flows_memo_get(key.0, key.1) {
            return verdict;
        }
        let verdict = self
            .iter()
            .filter(|l| l.is_confidentiality())
            .all(|l| privileges.has_clearance(l));
        intern::flows_memo_put(key.0, key.1, verdict);
        verdict
    }

    /// The confidentiality labels in `self` that `privileges` does **not**
    /// have clearance for — the non-allocating variant of
    /// [`LabelSet::blocking_labels`]. Yields labels in sorted order; empty
    /// when the flow is permitted.
    pub fn blocking<'a>(
        &self,
        privileges: &'a PrivilegeSet,
    ) -> impl Iterator<Item = &'static Label> + 'a {
        self.repr
            .labels
            .iter()
            .filter(move |l| l.is_confidentiality() && !privileges.has_clearance(l))
    }

    /// The confidentiality labels in `self` that `privileges` does **not**
    /// have clearance for — i.e. the reason a [`LabelSet::flows_to`] check
    /// fails. Empty when the flow is permitted.
    pub fn blocking_labels(&self, privileges: &PrivilegeSet) -> Vec<Label> {
        self.blocking(privileges).cloned().collect()
    }

    /// Removes `label` from the set if `privileges` grants declassification
    /// (for confidentiality labels) over it.
    ///
    /// # Errors
    ///
    /// Returns [`DeclassifyError`] if the privilege is missing. Removing a
    /// label that is not present is a no-op and succeeds.
    pub fn declassify(
        &mut self,
        label: &Label,
        privileges: &PrivilegeSet,
    ) -> Result<(), DeclassifyError> {
        if !label.is_confidentiality() {
            return Err(DeclassifyError::NotConfidentiality(label.clone()));
        }
        if !privileges.can_declassify(label) {
            return Err(DeclassifyError::MissingPrivilege(label.clone()));
        }
        self.remove_unchecked(label);
        Ok(())
    }

    /// Adds `label` as an integrity endorsement if `privileges` grants
    /// endorsement over it.
    ///
    /// # Errors
    ///
    /// Returns [`EndorseError`] if the privilege is missing or the label is
    /// not an integrity label.
    pub fn endorse(
        &mut self,
        label: &Label,
        privileges: &PrivilegeSet,
    ) -> Result<(), EndorseError> {
        if !label.is_integrity() {
            return Err(EndorseError::NotIntegrity(label.clone()));
        }
        if !privileges.can_endorse(label) {
            return Err(EndorseError::MissingPrivilege(label.clone()));
        }
        self.insert(label.clone());
        Ok(())
    }

    /// Encodes the set as a comma-separated list of label URIs in sorted
    /// order; the wire format used in STOMP headers and database documents.
    /// Returns an empty string for the empty set.
    pub fn to_wire(&self) -> String {
        let parts: Vec<String> = self.iter().map(|l| l.to_string()).collect();
        parts.join(",")
    }

    /// Decodes a comma-separated list of label URIs, ignoring surrounding
    /// whitespace around each element. The empty string decodes to the empty
    /// set.
    ///
    /// # Errors
    ///
    /// Returns [`ParseLabelError`] if any element is not a valid label URI.
    pub fn from_wire(s: &str) -> Result<LabelSet, ParseLabelError> {
        let mut labels = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            labels.push(part.parse()?);
        }
        Ok(LabelSet::from_vec(labels))
    }
}

impl Default for LabelSet {
    fn default() -> LabelSet {
        LabelSet::new()
    }
}

impl PartialEq for LabelSet {
    fn eq(&self, other: &LabelSet) -> bool {
        self.repr.id == other.repr.id
    }
}

impl Eq for LabelSet {}

impl Hash for LabelSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.repr.id.hash(state);
    }
}

impl PartialOrd for LabelSet {
    fn partial_cmp(&self, other: &LabelSet) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LabelSet {
    fn cmp(&self, other: &LabelSet) -> Ordering {
        if self.repr.id == other.repr.id {
            return Ordering::Equal;
        }
        self.repr.labels.cmp(&other.repr.labels)
    }
}

impl fmt::Debug for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LabelSet({} {{{}}})", self.id(), self.to_wire())
    }
}

impl FromIterator<Label> for LabelSet {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> LabelSet {
        LabelSet::from_vec(iter.into_iter().collect())
    }
}

impl Extend<Label> for LabelSet {
    fn extend<I: IntoIterator<Item = Label>>(&mut self, iter: I) {
        let novel: Vec<Label> = iter.into_iter().filter(|l| !self.contains(l)).collect();
        if novel.is_empty() {
            return;
        }
        let mut labels = self.repr.labels.to_vec();
        labels.extend(novel);
        *self = LabelSet::from_vec(labels);
    }
}

impl<'a> IntoIterator for &'a LabelSet {
    type Item = &'a Label;
    type IntoIter = std::slice::Iter<'a, Label>;

    fn into_iter(self) -> Self::IntoIter {
        self.repr.labels.iter()
    }
}

impl IntoIterator for LabelSet {
    type Item = Label;
    type IntoIter = std::iter::Cloned<std::slice::Iter<'static, Label>>;

    fn into_iter(self) -> Self::IntoIter {
        self.repr.labels.iter().cloned()
    }
}

impl fmt::Display for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.to_wire())
    }
}

impl FromStr for LabelSet {
    type Err = ParseLabelError;

    fn from_str(s: &str) -> Result<LabelSet, ParseLabelError> {
        LabelSet::from_wire(s)
    }
}

/// Error returned by [`LabelSet::declassify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeclassifyError {
    /// The caller lacks the declassification privilege for this label.
    MissingPrivilege(Label),
    /// Declassification only applies to confidentiality labels.
    NotConfidentiality(Label),
}

impl fmt::Display for DeclassifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeclassifyError::MissingPrivilege(l) => {
                write!(f, "missing declassification privilege for {l}")
            }
            DeclassifyError::NotConfidentiality(l) => {
                write!(f, "cannot declassify non-confidentiality label {l}")
            }
        }
    }
}

impl std::error::Error for DeclassifyError {}

/// Error returned by [`LabelSet::endorse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndorseError {
    /// The caller lacks the endorsement privilege for this label.
    MissingPrivilege(Label),
    /// Endorsement only applies to integrity labels.
    NotIntegrity(Label),
}

impl fmt::Display for EndorseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndorseError::MissingPrivilege(l) => {
                write!(f, "missing endorsement privilege for {l}")
            }
            EndorseError::NotIntegrity(l) => {
                write!(f, "cannot endorse non-integrity label {l}")
            }
        }
    }
}

impl std::error::Error for EndorseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privilege::Privilege;

    fn conf(p: &str) -> Label {
        Label::conf("ecric.org.uk", p)
    }

    fn int(p: &str) -> Label {
        Label::int("ecric.org.uk", p)
    }

    #[test]
    fn combine_is_sticky_for_confidentiality() {
        let a = LabelSet::singleton(conf("patient/1"));
        let b = LabelSet::singleton(conf("patient/2"));
        let c = a.combine(&b);
        assert!(c.contains(&conf("patient/1")));
        assert!(c.contains(&conf("patient/2")));
    }

    #[test]
    fn combine_is_fragile_for_integrity() {
        let a = LabelSet::from_iter([int("mdt"), int("lab")]);
        let b = LabelSet::from_iter([int("mdt")]);
        let c = a.combine(&b);
        assert!(c.contains(&int("mdt")));
        assert!(!c.contains(&int("lab")));
    }

    #[test]
    fn empty_set_flows_anywhere() {
        assert!(LabelSet::new().flows_to(&PrivilegeSet::new()));
    }

    #[test]
    fn flow_requires_clearance_for_all_conf_labels() {
        let set = LabelSet::from_iter([conf("patient/1"), conf("patient/2")]);
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::clearance(conf("patient/1")));
        assert!(!set.flows_to(&privs));
        assert_eq!(set.blocking_labels(&privs), vec![conf("patient/2")]);
        privs.grant(Privilege::clearance(conf("patient/2")));
        assert!(set.flows_to(&privs));
        assert!(set.blocking_labels(&privs).is_empty());
    }

    #[test]
    fn integrity_labels_do_not_block_flow() {
        let set = LabelSet::singleton(int("mdt"));
        assert!(set.flows_to(&PrivilegeSet::new()));
    }

    #[test]
    fn declassify_requires_privilege() {
        let mut set = LabelSet::singleton(conf("patient/1"));
        let err = set
            .declassify(&conf("patient/1"), &PrivilegeSet::new())
            .unwrap_err();
        assert!(matches!(err, DeclassifyError::MissingPrivilege(_)));
        assert!(set.contains(&conf("patient/1")));

        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::declassify(conf("patient/1")));
        set.declassify(&conf("patient/1"), &privs).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn declassify_rejects_integrity_labels() {
        let mut set = LabelSet::singleton(int("mdt"));
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::declassify(conf("x")));
        assert!(matches!(
            set.declassify(&int("mdt"), &privs),
            Err(DeclassifyError::NotConfidentiality(_))
        ));
    }

    #[test]
    fn endorse_requires_privilege() {
        let mut set = LabelSet::new();
        assert!(matches!(
            set.endorse(&int("mdt"), &PrivilegeSet::new()),
            Err(EndorseError::MissingPrivilege(_))
        ));
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::endorse(int("mdt")));
        set.endorse(&int("mdt"), &privs).unwrap();
        assert!(set.contains(&int("mdt")));
    }

    #[test]
    fn wire_roundtrip() {
        let set = LabelSet::from_iter([conf("patient/1"), int("mdt"), conf("mdt/a")]);
        let wire = set.to_wire();
        let back = LabelSet::from_wire(&wire).unwrap();
        assert_eq!(set, back);
        assert_eq!(set.id(), back.id());
    }

    #[test]
    fn wire_empty() {
        assert_eq!(LabelSet::new().to_wire(), "");
        assert_eq!(LabelSet::from_wire("").unwrap(), LabelSet::new());
        assert_eq!(LabelSet::from_wire("  ,  ").unwrap(), LabelSet::new());
    }

    #[test]
    fn wire_rejects_garbage() {
        assert!(LabelSet::from_wire("label:conf:a,nonsense").is_err());
    }

    #[test]
    fn equal_content_means_equal_id() {
        let a = LabelSet::from_iter([conf("mdt/a"), conf("patient/1")]);
        let b = LabelSet::from_iter([conf("patient/1"), conf("mdt/a"), conf("mdt/a")]);
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
    }

    #[test]
    fn handle_copies_are_free_and_stable() {
        let a = LabelSet::from_iter([conf("patient/7")]);
        let before = LabelSet::interned_count();
        for _ in 0..100 {
            let b = a; // Copy
            assert_eq!(a, b);
        }
        assert_eq!(LabelSet::interned_count(), before);
    }

    #[test]
    fn projections_are_precomputed_and_interned() {
        let mixed = LabelSet::from_iter([conf("patient/1"), int("mdt")]);
        assert_eq!(mixed.confidentiality().id(), mixed.confidentiality().id());
        assert_eq!(
            mixed.confidentiality(),
            LabelSet::singleton(conf("patient/1"))
        );
        assert_eq!(mixed.integrity(), LabelSet::singleton(int("mdt")));
        let pure = LabelSet::singleton(conf("patient/1"));
        assert_eq!(pure.confidentiality().id(), pure.id());
    }

    #[test]
    fn ordering_matches_label_contents() {
        let a = LabelSet::singleton(conf("a"));
        let b = LabelSet::singleton(conf("b"));
        assert!(a < b);
        assert!(LabelSet::new() < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }
}
