//! Hash-consed interning of label sets and privilege sets.
//!
//! Every distinct canonical label set in the process is stored exactly once
//! in a global, append-only table and identified by a small [`LabelSetId`].
//! A [`crate::LabelSet`] is then a `Copy` handle onto that table: copying
//! one copies a pointer, comparing two compares one integer, and hashing
//! one hashes one integer. The same scheme backs [`crate::PrivilegeSet`]
//! with [`PrivilegeSetId`].
//!
//! The tables never evict — an interned set is immutable and its id is
//! valid for the life of the process — which is what makes the
//! `(LabelSetId, PrivilegeSetId) → bool` memo for
//! [`crate::LabelSet::flows_to`] sound: both operands of a memoised verdict
//! can never change, so entries are never invalidated. The memo itself *is*
//! bounded (sharded, clear-on-overflow) because it is a pure cache; the
//! intern tables are not, because they are the identity of the values.
//!
//! Lock discipline: the table locks and the memo shard locks are always
//! taken one at a time and released before any other lock is acquired, so
//! no lock ordering exists to get wrong.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock, RwLock};

use crate::label::{Label, LabelKind};
use crate::privilege::Privilege;

/// The identity of an interned canonical label set.
///
/// Two [`crate::LabelSet`] values are equal **iff** their ids are equal:
/// the hash-cons table guarantees each distinct set of labels is interned
/// exactly once per process. Ids are process-local — they are *not* stable
/// across runs and never appear on the wire (the wire format remains the
/// sorted label-URI list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelSetId(u32);

impl LabelSetId {
    /// The raw id, e.g. for use as a cache key outside this crate.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for LabelSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ls#{}", self.0)
    }
}

/// The identity of an interned canonical privilege set.
///
/// Same contract as [`LabelSetId`]: equal ids ⇔ equal privilege sets,
/// process-local, never on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrivilegeSetId(u32);

impl PrivilegeSetId {
    /// The raw id, e.g. for use as a cache key outside this crate.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PrivilegeSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ps#{}", self.0)
    }
}

/// The canonical, shared representation of one interned label set.
pub(crate) struct SetRepr {
    pub(crate) id: LabelSetId,
    /// Sorted, deduplicated labels — the canonical form used as table key.
    pub(crate) labels: Box<[Label]>,
    /// How many of `labels` are confidentiality labels (the `flows_to`
    /// empty fast path: zero means the set blocks nothing).
    pub(crate) conf_count: usize,
    /// Interned projection onto the confidentiality labels, computed once
    /// at intern time (self-referential when the set is pure).
    confidentiality: OnceLock<&'static SetRepr>,
    /// Interned projection onto the integrity labels.
    integrity: OnceLock<&'static SetRepr>,
}

/// The canonical, shared representation of one interned privilege set.
pub(crate) struct PrivRepr {
    pub(crate) id: PrivilegeSetId,
    /// Sorted, deduplicated privileges.
    pub(crate) privileges: Box<[Privilege]>,
}

fn set_table() -> &'static RwLock<HashMap<&'static [Label], &'static SetRepr>> {
    static TABLE: OnceLock<RwLock<HashMap<&'static [Label], &'static SetRepr>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashMap::new()))
}

fn priv_table() -> &'static RwLock<HashMap<&'static [Privilege], &'static PrivRepr>> {
    static TABLE: OnceLock<RwLock<HashMap<&'static [Privilege], &'static PrivRepr>>> =
        OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Interns `labels`, which must already be sorted and deduplicated.
///
/// The common case (the set has been seen before) takes one shared-lock
/// hash lookup. A novel set leaks one canonical allocation for the life of
/// the process and is assigned the next [`LabelSetId`].
pub(crate) fn intern_sorted_labels(labels: Vec<Label>) -> &'static SetRepr {
    debug_assert!(labels.windows(2).all(|w| w[0] < w[1]), "not canonical");
    {
        let table = set_table().read().expect("label intern table poisoned");
        if let Some(repr) = table.get(labels.as_slice()) {
            return repr;
        }
    }
    let repr = {
        let mut table = set_table().write().expect("label intern table poisoned");
        match table.get(labels.as_slice()) {
            Some(repr) => *repr,
            None => {
                let conf_count = labels.iter().filter(|l| l.is_confidentiality()).count();
                let id = LabelSetId(
                    u32::try_from(table.len()).expect("label-set intern table overflow"),
                );
                let repr: &'static SetRepr = Box::leak(Box::new(SetRepr {
                    id,
                    labels: labels.into_boxed_slice(),
                    conf_count,
                    confidentiality: OnceLock::new(),
                    integrity: OnceLock::new(),
                }));
                table.insert(&repr.labels, repr);
                repr
            }
        }
    };
    // Fill the kind projections eagerly, outside the table lock. The
    // projection of a pure set is the set itself, so this recurses at most
    // one level before bottoming out.
    let _ = projection(repr, LabelKind::Confidentiality);
    let _ = projection(repr, LabelKind::Integrity);
    repr
}

/// The interned projection of `repr` onto labels of `kind`.
///
/// Computed once per repr (eagerly at intern time; the `OnceLock` also
/// covers the race where another thread observes the repr first).
pub(crate) fn projection(repr: &'static SetRepr, kind: LabelKind) -> &'static SetRepr {
    let cell = match kind {
        LabelKind::Confidentiality => &repr.confidentiality,
        LabelKind::Integrity => &repr.integrity,
    };
    cell.get_or_init(|| {
        let count = match kind {
            LabelKind::Confidentiality => repr.conf_count,
            LabelKind::Integrity => repr.labels.len() - repr.conf_count,
        };
        if count == repr.labels.len() {
            return repr;
        }
        let filtered: Vec<Label> = repr
            .labels
            .iter()
            .filter(|l| l.kind() == kind)
            .cloned()
            .collect();
        intern_sorted_labels(filtered)
    })
}

/// Interns `privileges`, which must already be sorted and deduplicated.
pub(crate) fn intern_sorted_privileges(privileges: Vec<Privilege>) -> &'static PrivRepr {
    debug_assert!(privileges.windows(2).all(|w| w[0] < w[1]), "not canonical");
    {
        let table = priv_table()
            .read()
            .expect("privilege intern table poisoned");
        if let Some(repr) = table.get(privileges.as_slice()) {
            return repr;
        }
    }
    let mut table = priv_table()
        .write()
        .expect("privilege intern table poisoned");
    match table.get(privileges.as_slice()) {
        Some(repr) => repr,
        None => {
            let id = PrivilegeSetId(
                u32::try_from(table.len()).expect("privilege-set intern table overflow"),
            );
            let repr: &'static PrivRepr = Box::leak(Box::new(PrivRepr {
                id,
                privileges: privileges.into_boxed_slice(),
            }));
            table.insert(&repr.privileges, repr);
            repr
        }
    }
}

/// Number of distinct label sets interned so far in this process.
pub(crate) fn interned_set_count() -> usize {
    set_table()
        .read()
        .expect("label intern table poisoned")
        .len()
}

/// Number of distinct privilege sets interned so far in this process.
pub(crate) fn interned_priv_count() -> usize {
    priv_table()
        .read()
        .expect("privilege intern table poisoned")
        .len()
}

// --- flows_to memo ---------------------------------------------------------

/// Shard count for the memo; a power of two so the index is a mask.
const MEMO_SHARDS: usize = 16;
/// Per-shard entry bound; on overflow the shard is cleared (entries are a
/// pure cache of immutable facts, so dropping them only costs recompute).
const MEMO_SHARD_CAP: usize = 8192;

/// One memo shard: verdicts keyed by raw `(LabelSetId, PrivilegeSetId)`.
type MemoShard = Mutex<HashMap<(u32, u32), bool>>;

fn memo_shards() -> &'static [MemoShard; MEMO_SHARDS] {
    static MEMO: OnceLock<[MemoShard; MEMO_SHARDS]> = OnceLock::new();
    MEMO.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashMap::new())))
}

fn memo_shard(set: LabelSetId, privs: PrivilegeSetId) -> &'static MemoShard {
    let mix = set
        .0
        .wrapping_mul(0x9e37_79b9)
        .wrapping_add(privs.0.wrapping_mul(0x85eb_ca6b));
    &memo_shards()[(mix as usize) & (MEMO_SHARDS - 1)]
}

/// Cached `flows_to` verdict for `(set, privs)`, if one is present.
pub(crate) fn flows_memo_get(set: LabelSetId, privs: PrivilegeSetId) -> Option<bool> {
    memo_shard(set, privs)
        .lock()
        .expect("flows_to memo poisoned")
        .get(&(set.0, privs.0))
        .copied()
}

/// Records a `flows_to` verdict for `(set, privs)`.
pub(crate) fn flows_memo_put(set: LabelSetId, privs: PrivilegeSetId, verdict: bool) {
    let mut shard = memo_shard(set, privs)
        .lock()
        .expect("flows_to memo poisoned");
    if shard.len() >= MEMO_SHARD_CAP {
        shard.clear();
    }
    shard.insert((set.0, privs.0), verdict);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conf(p: &str) -> Label {
        Label::conf("intern.test", p)
    }

    #[test]
    fn interning_is_idempotent_and_ids_are_identity() {
        let a = intern_sorted_labels(vec![conf("a"), conf("b")]);
        let b = intern_sorted_labels(vec![conf("a"), conf("b")]);
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.id, b.id);
        let c = intern_sorted_labels(vec![conf("a")]);
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn projections_are_interned_once() {
        let mixed = intern_sorted_labels(vec![conf("a"), Label::int("intern.test", "ok")]);
        let p1 = projection(mixed, LabelKind::Confidentiality);
        let p2 = projection(mixed, LabelKind::Confidentiality);
        assert!(std::ptr::eq(p1, p2));
        assert_eq!(p1.labels.len(), 1);
        let pure = projection(p1, LabelKind::Confidentiality);
        assert!(std::ptr::eq(p1, pure), "pure projection is self");
    }

    #[test]
    fn memo_roundtrip_and_overflow_clears() {
        let set = LabelSetId(u32::MAX - 1);
        let privs = PrivilegeSetId(u32::MAX - 1);
        assert_eq!(flows_memo_get(set, privs), None);
        flows_memo_put(set, privs, true);
        assert_eq!(flows_memo_get(set, privs), Some(true));
    }
}
