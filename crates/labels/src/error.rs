//! Error types for label and policy parsing.

use std::fmt;

/// Error produced when parsing a label URI, label set, pattern or privilege
/// keyword fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLabelError {
    message: String,
}

impl ParseLabelError {
    pub(crate) fn new(message: impl Into<String>) -> ParseLabelError {
        ParseLabelError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseLabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseLabelError {}

/// Error produced when parsing a policy file fails; carries the offending
/// line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    line: usize,
    message: String,
}

impl ParsePolicyError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> ParsePolicyError {
        ParsePolicyError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParsePolicyError {}
