//! Runtime privilege delegation — the paper's label manager (§4.1):
//! "For more complex policies with dynamic privileges, a label manager
//! could delegate privileges to units at runtime."
//!
//! The manager starts from a static [`Policy`] and lets principals
//! delegate privileges they hold to other principals, with revocation.
//! Two rules keep delegation sound:
//!
//! 1. **No amplification** — a principal can only delegate a privilege it
//!    *effectively holds* (statically, as an authority owner, or through a
//!    live delegation chain).
//! 2. **Cascading revocation** — a delegation is only effective while its
//!    grantor still holds the privilege, so revoking an upstream grant
//!    silently disables every chain built on it.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use crate::policy::{Policy, PrincipalKind};
use crate::privilege::{Privilege, PrivilegeSet};

/// A principal as the manager names it: kind plus name.
pub type Principal = (PrincipalKind, String);

/// Identifier of a live delegation, for revocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DelegationId(u64);

/// Why a delegation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DelegationError {
    /// The grantor does not (effectively) hold the privilege.
    NotHeld {
        /// The grantor that attempted the delegation.
        grantor: String,
        /// The privilege that was not held.
        privilege: Privilege,
    },
    /// Self-delegation is pointless and rejected to catch configuration
    /// mistakes.
    SelfDelegation,
}

impl fmt::Display for DelegationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelegationError::NotHeld { grantor, privilege } => {
                write!(
                    f,
                    "{grantor} does not hold `{privilege}` and cannot delegate it"
                )
            }
            DelegationError::SelfDelegation => write!(f, "cannot delegate to oneself"),
        }
    }
}

impl std::error::Error for DelegationError {}

#[derive(Debug, Clone)]
struct Delegation {
    grantor: Principal,
    grantee: Principal,
    privilege: Privilege,
}

#[derive(Debug, Default)]
struct Inner {
    next_id: u64,
    delegations: BTreeMap<DelegationId, Delegation>,
    /// authority → owning principal: owners hold every privilege over
    /// their authority's labels (the paper's "original owner of the data").
    owners: BTreeMap<String, Principal>,
}

/// The label manager: a static policy plus runtime delegations.
///
/// ```
/// use safeweb_labels::{Label, LabelManager, Policy, Privilege, PrincipalKind};
///
/// let policy: Policy = "unit storage {\n declassify label:conf:e/mdt/*\n}".parse()?;
/// let manager = LabelManager::new(policy);
///
/// // storage may delegate what it holds...
/// let grant = manager.delegate(
///     (PrincipalKind::Unit, "storage".into()),
///     (PrincipalKind::Unit, "night_shift".into()),
///     Privilege::declassify(Label::conf("e", "mdt/a")),
/// )?;
/// assert!(manager
///     .privileges(PrincipalKind::Unit, "night_shift")
///     .can_declassify(&Label::conf("e", "mdt/a")));
///
/// // ...and revoke it again.
/// manager.revoke(grant);
/// assert!(!manager
///     .privileges(PrincipalKind::Unit, "night_shift")
///     .can_declassify(&Label::conf("e", "mdt/a")));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct LabelManager {
    policy: Policy,
    inner: Mutex<Inner>,
}

impl LabelManager {
    /// Creates a manager over a static base policy.
    pub fn new(policy: Policy) -> LabelManager {
        LabelManager {
            policy,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Declares `principal` the owner of `authority`: owners hold every
    /// privilege over labels minted under that authority and are the root
    /// of delegation chains (§3: "the original owner of the data can
    /// restrict the data flow ... by assigning declassification
    /// privileges").
    pub fn set_owner(&self, authority: &str, principal: Principal) {
        self.inner
            .lock()
            .expect("label manager lock")
            .owners
            .insert(authority.to_string(), principal);
    }

    /// Delegates `privilege` from `grantor` to `grantee`.
    ///
    /// # Errors
    ///
    /// [`DelegationError::NotHeld`] if the grantor does not effectively
    /// hold the privilege; [`DelegationError::SelfDelegation`] for
    /// self-grants.
    pub fn delegate(
        &self,
        grantor: Principal,
        grantee: Principal,
        privilege: Privilege,
    ) -> Result<DelegationId, DelegationError> {
        if grantor == grantee {
            return Err(DelegationError::SelfDelegation);
        }
        let mut inner = self.inner.lock().expect("label manager lock");
        if !self.holds(&inner, &grantor, &privilege, &mut Vec::new()) {
            return Err(DelegationError::NotHeld {
                grantor: format!("{} {}", grantor.0, grantor.1),
                privilege,
            });
        }
        inner.next_id += 1;
        let id = DelegationId(inner.next_id);
        inner.delegations.insert(
            id,
            Delegation {
                grantor,
                grantee,
                privilege,
            },
        );
        Ok(id)
    }

    /// Revokes a delegation. Chains built on it stop being effective
    /// immediately. Returns whether the id was live.
    pub fn revoke(&self, id: DelegationId) -> bool {
        self.inner
            .lock()
            .expect("label manager lock")
            .delegations
            .remove(&id)
            .is_some()
    }

    /// The effective privileges of a principal *right now*: static policy
    /// ∪ ownership ∪ live, still-rooted delegations.
    pub fn privileges(&self, kind: PrincipalKind, name: &str) -> PrivilegeSet {
        let inner = self.inner.lock().expect("label manager lock");
        let principal = (kind, name.to_string());
        let mut set = self.policy.privileges(kind, name);
        for delegation in inner.delegations.values() {
            if delegation.grantee == principal
                && self.holds(
                    &inner,
                    &delegation.grantor,
                    &delegation.privilege,
                    &mut Vec::new(),
                )
            {
                set.grant(delegation.privilege.clone());
            }
        }
        set
    }

    /// Whether `principal` effectively holds `privilege`: statically, as
    /// an authority owner, or through a live chain of delegations whose
    /// root holds it. `visiting` breaks delegation cycles.
    fn holds(
        &self,
        inner: &Inner,
        principal: &Principal,
        privilege: &Privilege,
        visiting: &mut Vec<Principal>,
    ) -> bool {
        // Statically granted? A broader static grant (e.g. a wildcard
        // declassify over `mdt/*`) subsumes an exact delegated privilege.
        let static_privs = self.policy.privileges(principal.0, &principal.1);
        let statically_held = match privilege.pattern().exact_label() {
            Some(label) => static_privs.permits(privilege.kind(), &label),
            None => static_privs.iter().any(|p| p == privilege),
        };
        if statically_held {
            return true;
        }
        // Authority owner? (Owners hold everything over their authority.)
        if inner.owners.get(privilege.pattern().authority()) == Some(principal) {
            return true;
        }
        // Through a live delegation whose grantor still holds it?
        if visiting.contains(principal) {
            return false; // cycle
        }
        visiting.push(principal.clone());
        let held = inner.delegations.values().any(|d| {
            d.grantee == *principal
                && d.privilege == *privilege
                && self.holds(inner, &d.grantor, privilege, visiting)
        });
        visiting.pop();
        held
    }

    /// Number of live delegations.
    pub fn delegation_count(&self) -> usize {
        self.inner
            .lock()
            .expect("label manager lock")
            .delegations
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn unit(name: &str) -> Principal {
        (PrincipalKind::Unit, name.to_string())
    }

    fn declassify_a() -> Privilege {
        Privilege::declassify(Label::conf("e", "mdt/a"))
    }

    fn manager() -> LabelManager {
        LabelManager::new(
            "unit storage {\n declassify label:conf:e/mdt/a\n}"
                .parse()
                .expect("policy"),
        )
    }

    #[test]
    fn delegation_requires_holding() {
        let m = manager();
        // storage holds it → may delegate.
        assert!(m
            .delegate(unit("storage"), unit("helper"), declassify_a())
            .is_ok());
        // mallory holds nothing → may not.
        let err = m
            .delegate(unit("mallory"), unit("friend"), declassify_a())
            .unwrap_err();
        assert!(matches!(err, DelegationError::NotHeld { .. }));
        assert!(err.to_string().contains("mallory"));
    }

    #[test]
    fn delegation_grants_and_revocation_removes() {
        let m = manager();
        let id = m
            .delegate(unit("storage"), unit("helper"), declassify_a())
            .unwrap();
        assert!(m
            .privileges(PrincipalKind::Unit, "helper")
            .can_declassify(&Label::conf("e", "mdt/a")));
        assert!(m.revoke(id));
        assert!(!m
            .privileges(PrincipalKind::Unit, "helper")
            .can_declassify(&Label::conf("e", "mdt/a")));
        assert!(!m.revoke(id));
    }

    #[test]
    fn chains_and_cascading_revocation() {
        let m = manager();
        let first = m
            .delegate(unit("storage"), unit("helper"), declassify_a())
            .unwrap();
        // helper now holds it via the chain → may re-delegate.
        let _second = m
            .delegate(unit("helper"), unit("intern"), declassify_a())
            .unwrap();
        assert!(m
            .privileges(PrincipalKind::Unit, "intern")
            .can_declassify(&Label::conf("e", "mdt/a")));
        // Revoking the upstream grant disables the whole chain.
        m.revoke(first);
        assert!(!m
            .privileges(PrincipalKind::Unit, "helper")
            .can_declassify(&Label::conf("e", "mdt/a")));
        assert!(!m
            .privileges(PrincipalKind::Unit, "intern")
            .can_declassify(&Label::conf("e", "mdt/a")));
    }

    #[test]
    fn owners_hold_everything_over_their_authority() {
        let m = LabelManager::new(Policy::new());
        m.set_owner("e", unit("registry"));
        // The owner can delegate arbitrary privileges over its authority…
        assert!(m
            .delegate(unit("registry"), unit("helper"), declassify_a())
            .is_ok());
        // …but not over someone else's.
        let foreign = Privilege::declassify(Label::conf("other.org", "x"));
        assert!(m
            .delegate(unit("registry"), unit("helper"), foreign)
            .is_err());
    }

    #[test]
    fn cycles_do_not_loop_or_grant() {
        let m = manager();
        let a_to_b = m
            .delegate(unit("storage"), unit("b"), declassify_a())
            .unwrap();
        let _b_to_c = m.delegate(unit("b"), unit("c"), declassify_a()).unwrap();
        let _c_to_b = m.delegate(unit("c"), unit("b"), declassify_a()).unwrap();
        // Cut the root: b and c now only "hold" through each other — a
        // cycle with no root — which must resolve to not-held, promptly.
        m.revoke(a_to_b);
        assert!(!m
            .privileges(PrincipalKind::Unit, "b")
            .can_declassify(&Label::conf("e", "mdt/a")));
        assert!(!m
            .privileges(PrincipalKind::Unit, "c")
            .can_declassify(&Label::conf("e", "mdt/a")));
    }

    #[test]
    fn self_delegation_rejected() {
        let m = manager();
        assert_eq!(
            m.delegate(unit("storage"), unit("storage"), declassify_a()),
            Err(DelegationError::SelfDelegation)
        );
    }

    #[test]
    fn static_policy_unaffected_by_delegations() {
        let m = manager();
        m.delegate(unit("storage"), unit("helper"), declassify_a())
            .unwrap();
        // The underlying policy object is untouched; only effective
        // privileges change.
        assert!(m
            .privileges(PrincipalKind::Unit, "storage")
            .can_declassify(&Label::conf("e", "mdt/a")));
        assert_eq!(m.delegation_count(), 1);
    }
}
