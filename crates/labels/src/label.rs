//! Security labels, represented as URIs as in §4.1 of the paper.
//!
//! A label such as `label:conf:ecric.org.uk/patient/33812769` protects the
//! confidentiality of one patient's data, while `label:int:ecric.org.uk/mdt`
//! asserts the integrity of data produced within the MDT application.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use crate::error::ParseLabelError;

/// The kind of protection a [`Label`] provides.
///
/// Confidentiality labels are *sticky*: once attached to a datum, every datum
/// derived from it inherits them. Integrity labels are *fragile*: a derived
/// datum keeps an integrity label only if **all** of its inputs carried it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LabelKind {
    /// Prevents sensitive data from escaping a system boundary (`label:conf:`).
    Confidentiality,
    /// Prevents low-integrity data from entering parts of an application
    /// (`label:int:`).
    Integrity,
}

impl LabelKind {
    /// The URI scheme segment for this kind (`"conf"` or `"int"`).
    pub fn scheme(self) -> &'static str {
        match self {
            LabelKind::Confidentiality => "conf",
            LabelKind::Integrity => "int",
        }
    }
}

impl fmt::Display for LabelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.scheme())
    }
}

/// A single security label.
///
/// Labels are URIs of the form `label:<kind>:<authority>/<path>`, where
/// `<authority>` names the organisation that minted the label and `<path>`
/// identifies the protected resource (possibly hierarchical).
///
/// ```
/// use safeweb_labels::{Label, LabelKind};
///
/// let l: Label = "label:conf:ecric.org.uk/patient/33812769".parse()?;
/// assert_eq!(l.kind(), LabelKind::Confidentiality);
/// assert_eq!(l.authority(), "ecric.org.uk");
/// assert_eq!(l.path(), "patient/33812769");
/// # Ok::<(), safeweb_labels::ParseLabelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label {
    kind: LabelKind,
    // Shared strings: labels are cloned on every event delivery and label
    // set union, so cloning must be cheap (two refcount bumps).
    authority: Arc<str>,
    path: Arc<str>,
}

impl Label {
    /// Creates a confidentiality label for `authority` and `path`.
    ///
    /// # Panics
    ///
    /// Panics if `authority` or `path` is syntactically invalid; use
    /// [`Label::new`] for fallible construction.
    pub fn conf(authority: &str, path: &str) -> Label {
        Label::new(LabelKind::Confidentiality, authority, path)
            .expect("invalid confidentiality label components")
    }

    /// Creates an integrity label for `authority` and `path`.
    ///
    /// # Panics
    ///
    /// Panics if `authority` or `path` is syntactically invalid; use
    /// [`Label::new`] for fallible construction.
    pub fn int(authority: &str, path: &str) -> Label {
        Label::new(LabelKind::Integrity, authority, path)
            .expect("invalid integrity label components")
    }

    /// Creates a label, validating its components.
    ///
    /// # Errors
    ///
    /// Returns [`ParseLabelError`] if the authority is empty or either
    /// component contains whitespace, commas or control characters (these
    /// would break the header encoding used on the wire).
    pub fn new(kind: LabelKind, authority: &str, path: &str) -> Result<Label, ParseLabelError> {
        validate_component(authority, "authority")?;
        if authority.is_empty() {
            return Err(ParseLabelError::new("label authority must not be empty"));
        }
        if !path.is_empty() {
            validate_component(path, "path")?;
        }
        Ok(Label {
            kind,
            authority: Arc::from(authority),
            path: Arc::from(path),
        })
    }

    /// The protection kind of this label.
    pub fn kind(&self) -> LabelKind {
        self.kind
    }

    /// Whether this is a confidentiality label.
    pub fn is_confidentiality(&self) -> bool {
        self.kind == LabelKind::Confidentiality
    }

    /// Whether this is an integrity label.
    pub fn is_integrity(&self) -> bool {
        self.kind == LabelKind::Integrity
    }

    /// The organisation that minted this label, e.g. `ecric.org.uk`.
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// The resource path protected by this label, e.g. `patient/33812769`.
    /// May be empty for an authority-wide label.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The full URI representation, e.g.
    /// `label:conf:ecric.org.uk/patient/33812769`.
    pub fn to_uri(&self) -> String {
        self.to_string()
    }
}

fn validate_component(s: &str, what: &str) -> Result<(), ParseLabelError> {
    for ch in s.chars() {
        if ch.is_whitespace() || ch == ',' || ch.is_control() {
            return Err(ParseLabelError::new(format!(
                "label {what} contains forbidden character {ch:?}"
            )));
        }
    }
    Ok(())
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "label:{}:{}", self.kind.scheme(), self.authority)
        } else {
            write!(
                f,
                "label:{}:{}/{}",
                self.kind.scheme(),
                self.authority,
                self.path
            )
        }
    }
}

impl FromStr for Label {
    type Err = ParseLabelError;

    /// Parses a label URI of the form `label:conf:<authority>/<path>` or
    /// `label:int:<authority>/<path>`.
    fn from_str(s: &str) -> Result<Label, ParseLabelError> {
        let rest = s.strip_prefix("label:").ok_or_else(|| {
            ParseLabelError::new(format!("label URI must start with `label:`: {s:?}"))
        })?;
        let (scheme, loc) = rest
            .split_once(':')
            .ok_or_else(|| ParseLabelError::new(format!("missing label kind in {s:?}")))?;
        let kind = match scheme {
            "conf" => LabelKind::Confidentiality,
            "int" => LabelKind::Integrity,
            other => {
                return Err(ParseLabelError::new(format!(
                    "unknown label kind {other:?} (expected `conf` or `int`)"
                )))
            }
        };
        let (authority, path) = match loc.split_once('/') {
            Some((a, p)) => (a, p),
            None => (loc, ""),
        };
        Label::new(kind, authority, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_confidentiality_roundtrip() {
        let uri = "label:conf:ecric.org.uk/patient/33812769";
        let l: Label = uri.parse().unwrap();
        assert_eq!(l.kind(), LabelKind::Confidentiality);
        assert_eq!(l.authority(), "ecric.org.uk");
        assert_eq!(l.path(), "patient/33812769");
        assert_eq!(l.to_string(), uri);
    }

    #[test]
    fn parse_integrity_roundtrip() {
        let uri = "label:int:ecric.org.uk/mdt";
        let l: Label = uri.parse().unwrap();
        assert_eq!(l.kind(), LabelKind::Integrity);
        assert_eq!(l.to_string(), uri);
    }

    #[test]
    fn authority_only_label() {
        let l: Label = "label:conf:nhs.uk".parse().unwrap();
        assert_eq!(l.authority(), "nhs.uk");
        assert_eq!(l.path(), "");
        assert_eq!(l.to_string(), "label:conf:nhs.uk");
    }

    #[test]
    fn rejects_bad_scheme() {
        assert!("label:secret:x/y".parse::<Label>().is_err());
        assert!("conf:x/y".parse::<Label>().is_err());
        assert!("label:conf".parse::<Label>().is_err());
    }

    #[test]
    fn rejects_forbidden_characters() {
        assert!(Label::new(LabelKind::Confidentiality, "a b", "p").is_err());
        assert!(Label::new(LabelKind::Confidentiality, "a", "p,q").is_err());
        assert!(Label::new(LabelKind::Confidentiality, "", "p").is_err());
    }

    #[test]
    fn labels_order_deterministically() {
        let a = Label::conf("a.org", "x");
        let b = Label::conf("b.org", "x");
        let i = Label::int("a.org", "x");
        assert!(a < b);
        assert!(a != i);
    }

    #[test]
    fn display_matches_to_uri() {
        let l = Label::conf("ecric.org.uk", "mdt/addenbrookes");
        assert_eq!(l.to_uri(), format!("{l}"));
    }
}
