//! Label patterns used in policy files to grant privileges over families of
//! labels (e.g. every per-MDT label) without enumerating them.

use std::fmt;
use std::str::FromStr;

use crate::error::ParseLabelError;
use crate::label::{Label, LabelKind};

/// A pattern over [`Label`]s.
///
/// A pattern looks like a label URI whose path may end in `/*` (matching any
/// suffix below that path) or be exactly `*` (matching any path under the
/// authority, including the empty path):
///
/// ```
/// use safeweb_labels::{Label, LabelPattern};
///
/// let p: LabelPattern = "label:conf:ecric.org.uk/mdt/*".parse()?;
/// assert!(p.matches(&Label::conf("ecric.org.uk", "mdt/addenbrookes")));
/// assert!(!p.matches(&Label::conf("ecric.org.uk", "patient/1")));
/// # Ok::<(), safeweb_labels::ParseLabelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelPattern {
    kind: LabelKind,
    authority: String,
    path: PathPattern,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum PathPattern {
    /// Matches exactly this path.
    Exact(String),
    /// Matches `prefix` itself and any path of the form `prefix/...`.
    /// An empty prefix matches every path.
    Prefix(String),
}

impl LabelPattern {
    /// A pattern matching exactly one label.
    pub fn exact(label: Label) -> LabelPattern {
        LabelPattern {
            kind: label.kind(),
            authority: label.authority().to_string(),
            path: PathPattern::Exact(label.path().to_string()),
        }
    }

    /// A pattern matching `prefix` and everything below it under
    /// `authority`. An empty `prefix` matches every label of that kind at
    /// that authority.
    ///
    /// # Errors
    ///
    /// Returns [`ParseLabelError`] if the components are not valid label
    /// syntax.
    pub fn prefix(
        kind: LabelKind,
        authority: &str,
        prefix: &str,
    ) -> Result<LabelPattern, ParseLabelError> {
        // Reuse label validation for the components.
        Label::new(kind, authority, prefix)?;
        Ok(LabelPattern {
            kind,
            authority: authority.to_string(),
            path: PathPattern::Prefix(prefix.to_string()),
        })
    }

    /// Whether `label` is matched by this pattern.
    pub fn matches(&self, label: &Label) -> bool {
        if label.kind() != self.kind || label.authority() != self.authority {
            return false;
        }
        match &self.path {
            PathPattern::Exact(p) => label.path() == p,
            PathPattern::Prefix(p) => {
                if p.is_empty() {
                    true
                } else {
                    label.path() == p
                        || label
                            .path()
                            .strip_prefix(p.as_str())
                            .is_some_and(|rest| rest.starts_with('/'))
                }
            }
        }
    }

    /// The label kind this pattern applies to.
    pub fn kind(&self) -> LabelKind {
        self.kind
    }

    /// The authority this pattern applies to.
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// Whether this pattern can match more than one label.
    pub fn is_wildcard(&self) -> bool {
        matches!(self.path, PathPattern::Prefix(_))
    }

    /// If the pattern matches exactly one label, that label.
    pub fn exact_label(&self) -> Option<Label> {
        match &self.path {
            PathPattern::Exact(p) => Label::new(self.kind, &self.authority, p).ok(),
            PathPattern::Prefix(_) => None,
        }
    }
}

impl fmt::Display for LabelPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.path {
            PathPattern::Exact(p) if p.is_empty() => {
                write!(f, "label:{}:{}", self.kind.scheme(), self.authority)
            }
            PathPattern::Exact(p) => {
                write!(f, "label:{}:{}/{}", self.kind.scheme(), self.authority, p)
            }
            PathPattern::Prefix(p) if p.is_empty() => {
                write!(f, "label:{}:{}/*", self.kind.scheme(), self.authority)
            }
            PathPattern::Prefix(p) => {
                write!(f, "label:{}:{}/{}/*", self.kind.scheme(), self.authority, p)
            }
        }
    }
}

impl FromStr for LabelPattern {
    type Err = ParseLabelError;

    /// Parses either a plain label URI (exact match) or a URI whose path
    /// ends in `/*` (prefix match).
    fn from_str(s: &str) -> Result<LabelPattern, ParseLabelError> {
        if let Some(stem) = s.strip_suffix("/*") {
            let label: Label = stem.parse()?;
            LabelPattern::prefix(label.kind(), label.authority(), label.path())
        } else {
            let label: Label = s.parse()?;
            Ok(LabelPattern::exact(label))
        }
    }
}

impl From<Label> for LabelPattern {
    fn from(label: Label) -> LabelPattern {
        LabelPattern::exact(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_pattern_matches_only_itself() {
        let p = LabelPattern::exact(Label::conf("e", "mdt/a"));
        assert!(p.matches(&Label::conf("e", "mdt/a")));
        assert!(!p.matches(&Label::conf("e", "mdt/a/sub")));
        assert!(!p.matches(&Label::conf("e", "mdt")));
        assert!(!p.matches(&Label::int("e", "mdt/a")));
        assert!(!p.is_wildcard());
    }

    #[test]
    fn prefix_pattern_matches_subtree() {
        let p: LabelPattern = "label:conf:e/mdt/*".parse().unwrap();
        assert!(p.matches(&Label::conf("e", "mdt")));
        assert!(p.matches(&Label::conf("e", "mdt/a")));
        assert!(p.matches(&Label::conf("e", "mdt/a/b")));
        assert!(!p.matches(&Label::conf("e", "mdtx")));
        assert!(!p.matches(&Label::conf("e", "patient/1")));
        assert!(p.is_wildcard());
    }

    #[test]
    fn authority_wildcard() {
        let p: LabelPattern = "label:conf:e/*".parse().unwrap();
        assert!(p.matches(&Label::conf("e", "anything")));
        assert!(p.matches(&Label::conf("e", "")));
        assert!(!p.matches(&Label::conf("other", "anything")));
    }

    #[test]
    fn kind_must_match() {
        let p: LabelPattern = "label:int:e/mdt/*".parse().unwrap();
        assert!(p.matches(&Label::int("e", "mdt/a")));
        assert!(!p.matches(&Label::conf("e", "mdt/a")));
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "label:conf:e/mdt/a",
            "label:conf:e/mdt/*",
            "label:int:e/*",
            "label:conf:e",
        ] {
            let p: LabelPattern = s.parse().unwrap();
            assert_eq!(p.to_string(), s, "pattern {s}");
            let again: LabelPattern = p.to_string().parse().unwrap();
            assert_eq!(again, p);
        }
    }

    #[test]
    fn rejects_inner_star() {
        // A `*` that is not the final path segment is just an ordinary
        // character and must fail label validation? No: '*' is allowed in
        // label paths only when it is the trailing wildcard. Parsing
        // "label:conf:e/a*" treats it as an exact label containing '*',
        // which we accept as Label syntax but it will never be produced by
        // honest label constructors. Ensure it at least does not act as a
        // wildcard.
        let p: LabelPattern = "label:conf:e/a*".parse().unwrap();
        assert!(!p.is_wildcard());
        assert!(!p.matches(&Label::conf("e", "ab")));
    }
}
