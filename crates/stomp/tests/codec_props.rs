//! Property tests: STOMP encode/decode round-trips for arbitrary frames,
//! including adversarial header content and chunked delivery.

use proptest::prelude::*;
use safeweb_stomp::codec::{encode, Decoder};
use safeweb_stomp::{Command, Frame};

fn arb_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        Just(Command::Connect),
        Just(Command::Connected),
        Just(Command::Send),
        Just(Command::Subscribe),
        Just(Command::Unsubscribe),
        Just(Command::Message),
        Just(Command::Receipt),
        Just(Command::Error),
        Just(Command::Disconnect),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        arb_command(),
        proptest::collection::vec(("[a-zA-Z-]{1,10}", "\\PC{0,20}"), 0..6),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(cmd, headers, body)| {
            let mut f = Frame::new(cmd);
            for (k, v) in headers {
                if k != "content-length" {
                    f.push_header(k, v);
                }
            }
            f.set_body(body);
            f
        })
}

proptest! {
    /// encode → decode returns an equivalent frame (plus the synthesised
    /// content-length header).
    #[test]
    fn roundtrip(frame in arb_frame()) {
        let bytes = encode(&frame);
        let mut d = Decoder::new();
        d.feed(&bytes);
        let back = d.next_frame().unwrap().expect("complete frame");
        prop_assert_eq!(back.command(), frame.command());
        prop_assert_eq!(back.body(), frame.body());
        for (k, _) in frame.headers() {
            prop_assert_eq!(back.header(k), frame.header(k), "header {}", k);
        }
        prop_assert!(d.next_frame().unwrap().is_none());
    }

    /// Chunked delivery (1..7-byte chunks) decodes identically.
    #[test]
    fn chunked_roundtrip(frame in arb_frame(), chunk in 1usize..7) {
        let bytes = encode(&frame);
        let mut d = Decoder::new();
        let mut out = None;
        for c in bytes.chunks(chunk) {
            d.feed(c);
            if out.is_none() {
                out = d.next_frame().unwrap();
            }
        }
        if out.is_none() {
            out = d.next_frame().unwrap();
        }
        let back = out.expect("complete frame");
        prop_assert_eq!(back.command(), frame.command());
        prop_assert_eq!(back.body(), frame.body());
    }

    /// Multiple concatenated frames all decode, in order.
    #[test]
    fn sequence_roundtrip(frames in proptest::collection::vec(arb_frame(), 0..5)) {
        let mut d = Decoder::new();
        for f in &frames {
            d.feed(&encode(f));
        }
        for f in &frames {
            let back = d.next_frame().unwrap().expect("frame");
            prop_assert_eq!(back.command(), f.command());
            prop_assert_eq!(back.body(), f.body());
        }
        prop_assert!(d.next_frame().unwrap().is_none());
    }

    /// The decoder is total on garbage: it errors or waits, never panics.
    #[test]
    fn decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut d = Decoder::new();
        d.feed(&bytes);
        for _ in 0..4 {
            if d.next_frame().is_err() {
                break;
            }
        }
    }
}
