//! Frame-oriented transports: TCP and in-memory.
//!
//! The paper's broker extends StompServer with SSL at the transport layer;
//! this reproduction uses plaintext TCP (see DESIGN.md §5 — transport
//! encryption is orthogonal to the IFC contribution) plus an in-memory
//! duplex used by tests and the embedded broker.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

use crate::codec::{encode, Decoder};
use crate::frame::Frame;

/// A bidirectional, frame-oriented connection.
pub trait Transport: Send {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the peer is gone or the write fails.
    fn send_frame(&mut self, frame: &Frame) -> io::Result<()>;

    /// Receives the next frame, blocking. Returns `Ok(None)` on clean EOF.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on connection failure, or `InvalidData` when
    /// the peer sends a malformed frame.
    fn recv_frame(&mut self) -> io::Result<Option<Frame>>;
}

/// [`Transport`] over a [`TcpStream`].
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    decoder: Decoder,
    read_buf: [u8; 8192],
}

impl TcpTransport {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> TcpTransport {
        TcpTransport {
            stream,
            decoder: Decoder::new(),
            read_buf: [0; 8192],
        }
    }

    /// Connects to `addr` (e.g. `"127.0.0.1:61613"`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> io::Result<TcpTransport> {
        Ok(TcpTransport::new(TcpStream::connect(addr)?))
    }

    /// Sets the read timeout of the underlying socket.
    ///
    /// # Errors
    ///
    /// Propagates socket option errors.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Access to the underlying stream, e.g. for shutdown.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

impl Transport for TcpTransport {
    fn send_frame(&mut self, frame: &Frame) -> io::Result<()> {
        let bytes = encode(frame);
        self.stream.write_all(&bytes)?;
        self.stream.flush()
    }

    fn recv_frame(&mut self) -> io::Result<Option<Frame>> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => return Ok(Some(frame)),
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            }
            let n = self.stream.read(&mut self.read_buf)?;
            if n == 0 {
                // EOF: any buffered partial frame is discarded.
                return Ok(None);
            }
            self.decoder.feed(&self.read_buf[..n]);
        }
    }
}

/// One endpoint of an in-memory duplex channel carrying frames.
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    recv_timeout: Option<Duration>,
}

impl ChannelTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (atx, arx) = std::sync::mpsc::channel();
        let (btx, brx) = std::sync::mpsc::channel();
        (
            ChannelTransport {
                tx: atx,
                rx: brx,
                recv_timeout: None,
            },
            ChannelTransport {
                tx: btx,
                rx: arx,
                recv_timeout: None,
            },
        )
    }

    /// Sets an optional receive timeout; timed-out receives surface as
    /// `WouldBlock` errors.
    pub fn set_recv_timeout(&mut self, timeout: Option<Duration>) {
        self.recv_timeout = timeout;
    }
}

impl Transport for ChannelTransport {
    fn send_frame(&mut self, frame: &Frame) -> io::Result<()> {
        self.tx
            .send(frame.clone())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer disconnected"))
    }

    fn recv_frame(&mut self) -> io::Result<Option<Frame>> {
        match self.recv_timeout {
            None => match self.rx.recv() {
                Ok(f) => Ok(Some(f)),
                Err(_) => Ok(None), // peer dropped: clean EOF
            },
            Some(t) => match self.rx.recv_timeout(t) {
                Ok(f) => Ok(Some(f)),
                Err(RecvTimeoutError::Timeout) => {
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "recv timeout"))
                }
                Err(RecvTimeoutError::Disconnected) => Ok(None),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Command;

    #[test]
    fn channel_pair_roundtrip() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send_frame(&Frame::new(Command::Connect).with_header("login", "x"))
            .unwrap();
        let got = b.recv_frame().unwrap().unwrap();
        assert_eq!(got.command(), Command::Connect);
        assert_eq!(got.header("login"), Some("x"));
    }

    #[test]
    fn channel_eof_on_drop() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert!(a.send_frame(&Frame::new(Command::Connect)).is_err());
    }

    #[test]
    fn channel_recv_timeout() {
        let (mut a, _b) = ChannelTransport::pair();
        a.set_recv_timeout(Some(Duration::from_millis(10)));
        let err = a.recv_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream);
            let f = t.recv_frame().unwrap().unwrap();
            assert_eq!(f.command(), Command::Send);
            t.send_frame(&Frame::new(Command::Receipt).with_header("receipt-id", "1"))
                .unwrap();
            // EOF after client drops.
            assert!(t.recv_frame().unwrap().is_none());
        });
        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        client
            .send_frame(&Frame::new(Command::Send).with_body("hello"))
            .unwrap();
        let receipt = client.recv_frame().unwrap().unwrap();
        assert_eq!(receipt.command(), Command::Receipt);
        drop(client);
        server.join().unwrap();
    }
}
