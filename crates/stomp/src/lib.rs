//! # safeweb-stomp
//!
//! A STOMP (Streaming Text Oriented Message Protocol) implementation: the
//! wire protocol of SafeWeb's event broker (§4.2 of the paper, refs
//! [23, 24]). The paper modified an existing Ruby StompServer; this crate
//! reimplements the protocol surface SafeWeb needs:
//!
//! * [`Frame`]s with commands `CONNECT`/`SEND`/`SUBSCRIBE`/`MESSAGE`/...
//! * an incremental, size-bounded [`codec`] with header escaping and
//!   `content-length` support,
//! * [`Transport`] implementations over TCP and in-memory channels.
//!
//! Label and selector semantics live one layer up in `safeweb-broker`; this
//! crate is purely the protocol substrate.
//!
//! ```
//! use safeweb_stomp::{Command, Frame, codec};
//!
//! let frame = Frame::new(Command::Send)
//!     .with_header("destination", "/patient_report")
//!     .with_body("payload");
//! let bytes = codec::encode(&frame);
//! let mut decoder = codec::Decoder::new();
//! decoder.feed(&bytes);
//! let back = decoder.next_frame()?.expect("complete frame");
//! assert_eq!(back.header("destination"), Some("/patient_report"));
//! # Ok::<(), safeweb_stomp::codec::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod codec;
mod frame;
mod transport;

pub use frame::{Command, Frame};
pub use transport::{ChannelTransport, TcpTransport, Transport};
