//! STOMP frames: command, headers and body.

use std::fmt;

/// A STOMP command (the verbs used by SafeWeb's broker dialect, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Client requests a session.
    Connect,
    /// Server accepts a session.
    Connected,
    /// Client publishes an event to a destination.
    Send,
    /// Client subscribes to a destination (optionally with a `selector`).
    Subscribe,
    /// Client cancels a subscription by `id`.
    Unsubscribe,
    /// Server delivers an event to a subscriber.
    Message,
    /// Server acknowledges a frame carrying a `receipt` header.
    Receipt,
    /// Server reports a protocol or policy error.
    Error,
    /// Client ends the session.
    Disconnect,
}

impl Command {
    /// The wire keyword for the command.
    pub fn as_str(self) -> &'static str {
        match self {
            Command::Connect => "CONNECT",
            Command::Connected => "CONNECTED",
            Command::Send => "SEND",
            Command::Subscribe => "SUBSCRIBE",
            Command::Unsubscribe => "UNSUBSCRIBE",
            Command::Message => "MESSAGE",
            Command::Receipt => "RECEIPT",
            Command::Error => "ERROR",
            Command::Disconnect => "DISCONNECT",
        }
    }

    /// Parses a wire keyword.
    pub fn from_keyword(word: &str) -> Option<Command> {
        Some(match word {
            "CONNECT" => Command::Connect,
            "CONNECTED" => Command::Connected,
            "SEND" => Command::Send,
            "SUBSCRIBE" => Command::Subscribe,
            "UNSUBSCRIBE" => Command::Unsubscribe,
            "MESSAGE" => Command::Message,
            "RECEIPT" => Command::Receipt,
            "ERROR" => Command::Error,
            "DISCONNECT" => Command::Disconnect,
            _ => return None,
        })
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A STOMP frame. Headers preserve insertion order; duplicate header names
/// follow the STOMP rule that the **first** occurrence wins on read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    command: Command,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Frame {
    /// Creates a frame with no headers and an empty body.
    pub fn new(command: Command) -> Frame {
        Frame {
            command,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// The frame's command.
    pub fn command(&self) -> Command {
        self.command
    }

    /// All headers in order.
    pub fn headers(&self) -> &[(String, String)] {
        &self.headers
    }

    /// The first value of the named header, per the STOMP duplicate rule.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Appends a header (builder style).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Frame {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Appends a header in place.
    pub fn push_header(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.headers.push((name.into(), value.into()));
    }

    /// Removes all headers with the given name, returning whether any were
    /// present. Used by the broker to strip client-supplied protected
    /// headers (e.g. labels) before re-attaching trusted values.
    pub fn remove_header(&mut self, name: &str) -> bool {
        let before = self.headers.len();
        self.headers.retain(|(k, _)| k != name);
        before != self.headers.len()
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// The body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Sets the body (builder style).
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Frame {
        self.body = body.into();
        self
    }

    /// Sets the body in place.
    pub fn set_body(&mut self, body: impl Into<Vec<u8>>) {
        self.body = body.into();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_duplicate_header_wins() {
        let f = Frame::new(Command::Send)
            .with_header("destination", "/a")
            .with_header("destination", "/b");
        assert_eq!(f.header("destination"), Some("/a"));
    }

    #[test]
    fn remove_header_strips_all_occurrences() {
        let mut f = Frame::new(Command::Send)
            .with_header("x", "1")
            .with_header("x", "2")
            .with_header("y", "3");
        assert!(f.remove_header("x"));
        assert_eq!(f.header("x"), None);
        assert_eq!(f.header("y"), Some("3"));
        assert!(!f.remove_header("x"));
    }

    #[test]
    fn command_keyword_roundtrip() {
        for c in [
            Command::Connect,
            Command::Connected,
            Command::Send,
            Command::Subscribe,
            Command::Unsubscribe,
            Command::Message,
            Command::Receipt,
            Command::Error,
            Command::Disconnect,
        ] {
            assert_eq!(Command::from_keyword(c.as_str()), Some(c));
        }
        assert_eq!(Command::from_keyword("NOPE"), None);
    }

    #[test]
    fn body_str_requires_utf8() {
        let f = Frame::new(Command::Send).with_body(vec![0xff, 0xfe]);
        assert!(f.body_str().is_none());
        let f = Frame::new(Command::Send).with_body("ok");
        assert_eq!(f.body_str(), Some("ok"));
    }
}
