//! Wire encoding/decoding of STOMP frames.
//!
//! Frame layout:
//!
//! ```text
//! COMMAND\n
//! header1:value1\n
//! header2:value2\n
//! \n
//! <body bytes>\0
//! ```
//!
//! Header names/values are escaped (`\n` → `\\n`, `:` → `\\c`, `\\` →
//! `\\\\`, `\r` → `\\r`) as in STOMP 1.2, so arbitrary label URIs and
//! selector expressions survive transport. Frames carrying a
//! `content-length` header may contain NUL bytes in the body; without it
//! the body ends at the first NUL.

use bytes::{Buf, BytesMut};
use std::fmt;

use crate::frame::{Command, Frame};

/// Maximum accepted frame size (headers + body), to bound memory under
/// malformed or hostile input.
pub const MAX_FRAME_SIZE: usize = 4 * 1024 * 1024;

/// Error produced while decoding a frame from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The command keyword is not a known STOMP command.
    UnknownCommand(String),
    /// A header line lacks a `:` separator or has an invalid escape.
    MalformedHeader(String),
    /// The frame exceeds [`MAX_FRAME_SIZE`].
    FrameTooLarge,
    /// `content-length` is not a valid integer.
    BadContentLength,
    /// The frame is not valid UTF-8 in its command/header section.
    InvalidUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownCommand(c) => write!(f, "unknown STOMP command {c:?}"),
            DecodeError::MalformedHeader(h) => write!(f, "malformed STOMP header {h:?}"),
            DecodeError::FrameTooLarge => write!(f, "frame exceeds maximum size"),
            DecodeError::BadContentLength => write!(f, "invalid content-length header"),
            DecodeError::InvalidUtf8 => write!(f, "frame head is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn escape(s: &str, out: &mut Vec<u8>) {
    for b in s.bytes() {
        match b {
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\n' => out.extend_from_slice(b"\\n"),
            b'\r' => out.extend_from_slice(b"\\r"),
            b':' => out.extend_from_slice(b"\\c"),
            other => out.push(other),
        }
    }
}

fn unescape(s: &str) -> Result<String, DecodeError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('c') => out.push(':'),
                _ => return Err(DecodeError::MalformedHeader(s.to_string())),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Encodes a frame to bytes. A `content-length` header reflecting the body
/// size is always emitted (and any client-supplied one is ignored), so
/// bodies may contain NUL bytes.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + frame.body().len());
    out.extend_from_slice(frame.command().as_str().as_bytes());
    out.push(b'\n');
    for (k, v) in frame.headers() {
        if k == "content-length" {
            continue;
        }
        escape(k, &mut out);
        out.push(b':');
        escape(v, &mut out);
        out.push(b'\n');
    }
    out.extend_from_slice(format!("content-length:{}\n", frame.body().len()).as_bytes());
    out.push(b'\n');
    out.extend_from_slice(frame.body());
    out.push(0);
    out
}

/// Incremental decoder: call [`Decoder::feed`] with received bytes, then
/// drain complete frames with [`Decoder::next_frame`].
#[derive(Debug, Default)]
pub struct Decoder {
    buf: BytesMut,
}

impl Decoder {
    /// Creates an empty decoder.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Appends received bytes to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to decode the next complete frame.
    ///
    /// Returns `Ok(None)` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input; the decoder state is
    /// then undefined and the connection should be dropped (the broker
    /// responds with an `ERROR` frame first when possible).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        // Skip heart-beat / inter-frame newlines and stray NULs.
        while matches!(self.buf.first(), Some(b'\n' | b'\r' | 0)) {
            self.buf.advance(1);
        }
        if self.buf.is_empty() {
            return Ok(None);
        }
        if self.buf.len() > MAX_FRAME_SIZE {
            return Err(DecodeError::FrameTooLarge);
        }

        // Find end of the head (blank line).
        let (head_end, body_start) = match find_blank_line(&self.buf) {
            Some(pair) => pair,
            None => return Ok(None),
        };
        let head =
            std::str::from_utf8(&self.buf[..head_end]).map_err(|_| DecodeError::InvalidUtf8)?;
        let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
        let command_line = lines.next().unwrap_or_default();
        let command = Command::from_keyword(command_line)
            .ok_or_else(|| DecodeError::UnknownCommand(command_line.to_string()))?;

        let mut headers = Vec::new();
        let mut content_length: Option<usize> = None;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once(':')
                .ok_or_else(|| DecodeError::MalformedHeader(line.to_string()))?;
            let k = unescape(k)?;
            let v = unescape(v)?;
            if k == "content-length" && content_length.is_none() {
                content_length = Some(v.parse().map_err(|_| DecodeError::BadContentLength)?);
            }
            headers.push((k, v));
        }

        let (body, consumed) = match content_length {
            Some(len) => {
                if len > MAX_FRAME_SIZE {
                    return Err(DecodeError::FrameTooLarge);
                }
                if self.buf.len() < body_start + len + 1 {
                    return Ok(None); // need body + trailing NUL
                }
                let body = self.buf[body_start..body_start + len].to_vec();
                // Trailing NUL is required.
                if self.buf[body_start + len] != 0 {
                    return Err(DecodeError::MalformedHeader(
                        "missing frame terminator".to_string(),
                    ));
                }
                (body, body_start + len + 1)
            }
            None => {
                // Body ends at first NUL.
                match self.buf[body_start..].iter().position(|&b| b == 0) {
                    Some(rel) => {
                        let body = self.buf[body_start..body_start + rel].to_vec();
                        (body, body_start + rel + 1)
                    }
                    None => return Ok(None),
                }
            }
        };

        self.buf.advance(consumed);
        let mut frame = Frame::new(command);
        for (k, v) in headers {
            frame.push_header(k, v);
        }
        frame.set_body(body);
        Ok(Some(frame))
    }
}

/// Finds the head/body separator (blank line), tolerating `\r\n` line
/// endings. Returns `(head_end, body_start)`: the head is `buf[..head_end]`
/// and the body begins at `body_start`.
fn find_blank_line(buf: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    while i + 1 < buf.len() {
        if buf[i] == b'\n' {
            if buf[i + 1] == b'\n' {
                return Some((i, i + 2));
            }
            if buf[i + 1] == b'\r' && buf.get(i + 2) == Some(&b'\n') {
                return Some((i, i + 3));
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        let bytes = encode(frame);
        let mut d = Decoder::new();
        d.feed(&bytes);
        d.next_frame().unwrap().unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = Frame::new(Command::Send)
            .with_header("destination", "/patient_report")
            .with_header("x-safeweb-labels", "label:conf:ecric.org.uk/patient/1")
            .with_body("payload");
        let back = roundtrip(&f);
        assert_eq!(back.command(), Command::Send);
        assert_eq!(back.header("destination"), Some("/patient_report"));
        assert_eq!(back.body_str(), Some("payload"));
    }

    #[test]
    fn escaping_preserves_special_characters() {
        let f =
            Frame::new(Command::Subscribe).with_header("selector", "type = 'a:b'\nAND x <> 'y\\z'");
        let back = roundtrip(&f);
        assert_eq!(
            back.header("selector"),
            Some("type = 'a:b'\nAND x <> 'y\\z'")
        );
    }

    #[test]
    fn nul_in_body_with_content_length() {
        let f = Frame::new(Command::Send).with_body(vec![1, 0, 2, 0, 3]);
        let back = roundtrip(&f);
        assert_eq!(back.body(), &[1, 0, 2, 0, 3]);
    }

    #[test]
    fn partial_feed_returns_none_until_complete() {
        let f = Frame::new(Command::Connect).with_header("login", "unit");
        let bytes = encode(&f);
        let mut d = Decoder::new();
        for chunk in bytes.chunks(3) {
            d.feed(chunk);
        }
        // All bytes fed: one frame available.
        assert!(d.next_frame().unwrap().is_some());
        assert!(d.next_frame().unwrap().is_none());

        let mut d2 = Decoder::new();
        d2.feed(&bytes[..bytes.len() / 2]);
        assert!(d2.next_frame().unwrap().is_none());
        d2.feed(&bytes[bytes.len() / 2..]);
        assert!(d2.next_frame().unwrap().is_some());
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        let a = encode(&Frame::new(Command::Connect));
        let b = encode(&Frame::new(Command::Disconnect));
        let mut d = Decoder::new();
        d.feed(&a);
        d.feed(&b);
        assert_eq!(d.next_frame().unwrap().unwrap().command(), Command::Connect);
        assert_eq!(
            d.next_frame().unwrap().unwrap().command(),
            Command::Disconnect
        );
        assert!(d.next_frame().unwrap().is_none());
    }

    #[test]
    fn rejects_unknown_command() {
        let mut d = Decoder::new();
        d.feed(b"TELEPORT\n\n\0");
        assert!(matches!(
            d.next_frame(),
            Err(DecodeError::UnknownCommand(_))
        ));
    }

    #[test]
    fn rejects_malformed_header() {
        let mut d = Decoder::new();
        d.feed(b"SEND\nnocolon\n\nbody\0");
        assert!(matches!(
            d.next_frame(),
            Err(DecodeError::MalformedHeader(_))
        ));
    }

    #[test]
    fn rejects_bad_content_length() {
        let mut d = Decoder::new();
        d.feed(b"SEND\ncontent-length:abc\n\n\0");
        assert!(matches!(d.next_frame(), Err(DecodeError::BadContentLength)));
    }

    #[test]
    fn skips_interframe_newlines() {
        let mut d = Decoder::new();
        d.feed(b"\n\n\n");
        d.feed(&encode(&Frame::new(Command::Connect)));
        assert!(d.next_frame().unwrap().is_some());
    }

    #[test]
    fn tolerates_crlf_line_endings() {
        let mut d = Decoder::new();
        d.feed(b"CONNECT\r\nlogin:x\r\n\r\n\0");
        let f = d.next_frame().unwrap().unwrap();
        assert_eq!(f.command(), Command::Connect);
        assert_eq!(f.header("login"), Some("x"));
    }
}
