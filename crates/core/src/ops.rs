//! The operator surface: `/__obs/metrics`, `/__obs/health` and
//! `/__obs/trace/:id`, served from a dedicated listener
//! ([`crate::SafeWebDeployment::serve_ops`]) that is never the public
//! frontend address.
//!
//! # Label safety
//!
//! Telemetry must not become a declassification side channel, so the
//! ops surface is doubly guarded:
//!
//! * **Clearance gate** — every route requires HTTP basic credentials
//!   for a user with the admin bit ([`safeweb_web::AuthenticatedUser`]);
//!   anonymous callers get `401`, authenticated non-admins `403`, and
//!   neither response carries telemetry.
//! * **Structural values only** — what the registry and tracer hold is
//!   restricted at the *recording* sites (machine-checked by the
//!   `telemetry-hygiene` lint rule): counts, durations, sequence
//!   numbers, interned label-set ids, static route/unit names. Document
//!   fields, payload bytes and principal-derived strings never reach a
//!   metric or span, so even an admin snapshot reveals structure, not
//!   secrets.

use std::sync::Arc;

use safeweb_docstore::{DocStore, WalSync};
use safeweb_http::{Handler, Request, Response};
use safeweb_json::Value;
use safeweb_obs::{tracer, MetricsRegistry, TraceId};
use safeweb_web::UserStore;

/// Everything the ops handler needs, cloned out of the deployment so
/// the handler is `'static`.
pub(crate) struct OpsState {
    pub(crate) metrics: MetricsRegistry,
    pub(crate) users: UserStore,
    pub(crate) app_db: DocStore,
    pub(crate) dmz_db: DocStore,
}

/// Builds the ops [`Handler`]: admin gate first, then route dispatch.
pub(crate) fn handler(state: OpsState) -> Handler {
    let state = Arc::new(state);
    Arc::new(move |request: Request| serve(&state, &request))
}

fn serve(state: &OpsState, request: &Request) -> Response {
    // The gate runs before any routing so probing route existence
    // needs credentials too.
    let Some((username, password)) = request.basic_auth() else {
        return Response::new(401)
            .with_header("www-authenticate", "Basic realm=\"SafeWeb ops\"")
            .with_body("authentication required");
    };
    let Some(user) = state.users.authenticate(&username, &password) else {
        return Response::new(401)
            .with_header("www-authenticate", "Basic realm=\"SafeWeb ops\"")
            .with_body("authentication required");
    };
    if !user.is_admin {
        // Under-cleared principal: deny without leaking whether the
        // route exists or what it would have shown.
        return Response::new(403).with_body("admin clearance required");
    }

    let path = request.path();
    if path == "/__obs/metrics" {
        return Response::json(state.metrics.snapshot().to_json());
    }
    if path == "/__obs/health" {
        return Response::json(health(state).to_json());
    }
    if let Some(id) = path.strip_prefix("/__obs/trace/") {
        return trace(id);
    }
    Response::new(404).with_body("not found")
}

/// The `/__obs/health` body: WAL sync state and persistence errors per
/// store, replication lag in sequence numbers, and live queue depths
/// against their caps — enough to answer "is the pipeline keeping up
/// and is anything about to lose data".
fn health(state: &OpsState) -> Value {
    let mut out = Value::object();

    let mut stores = Value::object();
    for (name, store) in [("app", &state.app_db), ("dmz", &state.dmz_db)] {
        let mut s = Value::object();
        s.set("durable", store.is_durable());
        s.set(
            "wal_sync",
            match store.wal_sync() {
                Some(WalSync::Always) => Value::from("always"),
                Some(WalSync::OsBuffered) => Value::from("os-buffered"),
                None => Value::Null,
            },
        );
        // The error string is produced by the store itself (I/O error
        // text), never from document content.
        s.set(
            "persistence_error",
            match store.persistence_error() {
                Some(e) => Value::from(e),
                None => Value::Null,
            },
        );
        s.set("seq", store.seq() as i64);
        stores.set(name, s);
    }
    out.set("stores", stores);

    // Queue depths vs caps and replication lag come from the registry's
    // derived gauges, so health never reaches into subsystem internals.
    let snapshot = state.metrics.snapshot();
    let gauge = |name: &str| snapshot.get(name).and_then(Value::as_f64).unwrap_or(0.0);
    let mut replication = Value::object();
    replication.set("lag_seqs", gauge("replication.lag_seqs") as i64);
    out.set("replication", replication);

    let mut queues = Value::object();
    queues.set(
        "sched_queued_messages",
        gauge("sched.queued_messages") as i64,
    );
    queues.set("sched_inbox_cap", gauge("sched.inbox_cap") as i64);
    queues.set(
        "frontend_outbox_bytes",
        gauge("frontend.outbox_bytes") as i64,
    );
    out.set("queues", queues);

    let degraded =
        state.app_db.persistence_error().is_some() || state.dmz_db.persistence_error().is_some();
    out.set("status", if degraded { "degraded" } else { "ok" });
    out
}

/// The `/__obs/trace/:id` body: every span recorded under the id,
/// ordered by start time — the stitched frontend → engine → broker →
/// store causal chain for one request.
fn trace(id: &str) -> Response {
    let Ok(id) = id.parse::<TraceId>() else {
        return Response::new(400).with_body("malformed trace id");
    };
    if !id.is_set() {
        return Response::new(400).with_body("malformed trace id");
    }
    let body = tracer().trace_json(id);
    let empty = body
        .get("spans")
        .and_then(|s| s.as_array())
        .map(|s| s.is_empty())
        .unwrap_or(true);
    if empty {
        return Response::new(404).with_body("trace not found");
    }
    Response::json(body.to_json())
}
