//! The network-zone model of the ECRIC deployment (Figure 4).
//!
//! ECRIC's network is split into an Intranet, a DMZ and the NHS-wide N3
//! network, with a firewall that "permits only unidirectional connections"
//! from the Intranet to the DMZ. This module encodes that connectivity
//! matrix so deployments can assert requirement **S1** — external users
//! can never open a path back into the Intranet — in code and tests.

use std::fmt;

/// A network zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Zone {
    /// The restricted internal network holding the main registry database,
    /// the event broker and the processing engine.
    Intranet,
    /// The demilitarised zone holding the read-only application-database
    /// replica and the web frontend.
    Dmz,
    /// The outside world (the NHS N3 network in the paper): browsers of
    /// MDT members.
    External,
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Zone::Intranet => write!(f, "intranet"),
            Zone::Dmz => write!(f, "DMZ"),
            Zone::External => write!(f, "external"),
        }
    }
}

/// Error for a connection the firewall topology forbids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneViolation {
    /// Originating zone.
    pub from: Zone,
    /// Target zone.
    pub to: Zone,
}

impl fmt::Display for ZoneViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "firewall forbids connections from {} to {}",
            self.from, self.to
        )
    }
}

impl std::error::Error for ZoneViolation {}

/// The ECRIC firewall matrix: who may *initiate* a connection to whom.
///
/// ```
/// use safeweb_core::{Zone, ZoneTopology};
///
/// let fw = ZoneTopology::ecric();
/// assert!(fw.check(Zone::Intranet, Zone::Dmz).is_ok());   // replication push
/// assert!(fw.check(Zone::External, Zone::Dmz).is_ok());   // browser → portal
/// assert!(fw.check(Zone::Dmz, Zone::Intranet).is_err());  // S1: never back in
/// assert!(fw.check(Zone::External, Zone::Intranet).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ZoneTopology {
    allowed: Vec<(Zone, Zone)>,
}

impl ZoneTopology {
    /// The topology of Figure 4: Intranet→Intranet, Intranet→DMZ,
    /// DMZ→DMZ, External→DMZ.
    pub fn ecric() -> ZoneTopology {
        ZoneTopology {
            allowed: vec![
                (Zone::Intranet, Zone::Intranet),
                (Zone::Intranet, Zone::Dmz),
                (Zone::Dmz, Zone::Dmz),
                (Zone::External, Zone::Dmz),
            ],
        }
    }

    /// An empty topology (nothing may connect); build custom matrices with
    /// [`ZoneTopology::allow`].
    pub fn deny_all() -> ZoneTopology {
        ZoneTopology {
            allowed: Vec::new(),
        }
    }

    /// Permits connections from `from` to `to`.
    pub fn allow(mut self, from: Zone, to: Zone) -> ZoneTopology {
        if !self.allowed.contains(&(from, to)) {
            self.allowed.push((from, to));
        }
        self
    }

    /// Whether `from` may initiate a connection to `to`.
    pub fn is_allowed(&self, from: Zone, to: Zone) -> bool {
        self.allowed.contains(&(from, to))
    }

    /// Checked connection attempt.
    ///
    /// # Errors
    ///
    /// Returns [`ZoneViolation`] when the firewall forbids the direction.
    pub fn check(&self, from: Zone, to: Zone) -> Result<(), ZoneViolation> {
        if self.is_allowed(from, to) {
            Ok(())
        } else {
            Err(ZoneViolation { from, to })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecric_topology_is_unidirectional() {
        let fw = ZoneTopology::ecric();
        // All allowed directions.
        assert!(fw.is_allowed(Zone::Intranet, Zone::Dmz));
        assert!(fw.is_allowed(Zone::Intranet, Zone::Intranet));
        assert!(fw.is_allowed(Zone::External, Zone::Dmz));
        assert!(fw.is_allowed(Zone::Dmz, Zone::Dmz));
        // S1: nothing reaches back into the Intranet, and external users
        // cannot bypass the DMZ.
        assert!(!fw.is_allowed(Zone::Dmz, Zone::Intranet));
        assert!(!fw.is_allowed(Zone::External, Zone::Intranet));
        assert!(!fw.is_allowed(Zone::Dmz, Zone::External));
        assert!(!fw.is_allowed(Zone::Intranet, Zone::External));
    }

    #[test]
    fn custom_topology() {
        let fw = ZoneTopology::deny_all().allow(Zone::External, Zone::Dmz);
        assert!(fw.check(Zone::External, Zone::Dmz).is_ok());
        let err = fw.check(Zone::External, Zone::Intranet).unwrap_err();
        assert_eq!(err.from, Zone::External);
        assert_eq!(err.to, Zone::Intranet);
        assert!(err.to_string().contains("forbids"));
    }
}
