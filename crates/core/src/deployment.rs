//! One-stop wiring of the full SafeWeb middleware (Figure 1): event
//! broker + processing engine in the Intranet, application database
//! replicated one-way into a read-only DMZ instance, and the enforcing
//! web frontend on top.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use safeweb_broker::{Broker, BrokerOptions};
use safeweb_docstore::{DocStore, ReplicationHandle};
use safeweb_engine::{
    Engine, EngineError, EngineHandle, EngineOptions, ExecutionMode, SchedulerOptions, UnitSpec,
};
use safeweb_http::HttpServer;
use safeweb_labels::Policy;
use safeweb_obs::MetricsRegistry;
use safeweb_relstore::Database;
use safeweb_web::{AuthConfig, SafeWebApp, UserStore};

use crate::ops;
use crate::zones::{Zone, ZoneTopology};

/// Builder for a complete SafeWeb deployment.
///
/// ```no_run
/// use safeweb_core::SafeWebBuilder;
/// use safeweb_engine::UnitSpec;
///
/// let deployment = SafeWebBuilder::new()
///     .policy("unit importer {\n privileged \n}".parse()?)
///     .unit(UnitSpec::new("importer"))
///     .build()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SafeWebBuilder {
    policy: Policy,
    units: Vec<UnitSpec>,
    deferred_units: Vec<Box<dyn FnOnce(DocStore) -> UnitSpec>>,
    replication_interval: Duration,
    auth_config: AuthConfig,
    engine_options: EngineOptions,
    app_views: Vec<(String, String)>,
    data_dir: Option<PathBuf>,
    frontend_shards: usize,
    slow_activation: Option<Duration>,
}

impl Default for SafeWebBuilder {
    fn default() -> SafeWebBuilder {
        SafeWebBuilder::new()
    }
}

impl SafeWebBuilder {
    /// A builder with an empty policy and no units.
    pub fn new() -> SafeWebBuilder {
        SafeWebBuilder {
            policy: Policy::new(),
            units: Vec::new(),
            deferred_units: Vec::new(),
            replication_interval: Duration::from_millis(100),
            auth_config: AuthConfig::default(),
            engine_options: EngineOptions::default(),
            app_views: Vec::new(),
            data_dir: None,
            frontend_shards: 1,
            slow_activation: None,
        }
    }

    /// Sets the data-flow policy (unit and user privileges).
    pub fn policy(mut self, policy: Policy) -> SafeWebBuilder {
        self.policy = policy;
        self
    }

    /// Adds an event-processing unit.
    pub fn unit(mut self, unit: UnitSpec) -> SafeWebBuilder {
        self.units.push(unit);
        self
    }

    /// Adds a unit whose construction needs the Intranet application
    /// database (typically the privileged storage unit, which persists
    /// labelled results). The closure runs during [`SafeWebBuilder::build`]
    /// once the database exists.
    pub fn unit_with_app_db(
        mut self,
        make: impl FnOnce(DocStore) -> UnitSpec + 'static,
    ) -> SafeWebBuilder {
        self.deferred_units.push(Box::new(make));
        self
    }

    /// Sets the Intranet→DMZ replication period (default 100 ms).
    pub fn replication_interval(mut self, interval: Duration) -> SafeWebBuilder {
        self.replication_interval = interval;
        self
    }

    /// Sets the authentication configuration (hash cost).
    pub fn auth_config(mut self, config: AuthConfig) -> SafeWebBuilder {
        self.auth_config = config;
        self
    }

    /// Sets engine options (execution mode; label tracking for baseline
    /// benchmarking only).
    pub fn engine_options(mut self, options: EngineOptions) -> SafeWebBuilder {
        self.engine_options = options;
        self
    }

    /// Runs the engine's units on a work-stealing worker pool with the
    /// given sizing — the scale mode for thousands of units (the default
    /// uses one worker per core and a 1024-message inbox per unit).
    /// Shorthand for setting [`ExecutionMode::Scheduled`] through
    /// [`SafeWebBuilder::engine_options`].
    pub fn scheduler(mut self, options: SchedulerOptions) -> SafeWebBuilder {
        self.engine_options.execution = ExecutionMode::Scheduled(options);
        self
    }

    /// Flags engine activations slower than `threshold` to the process
    /// tracer's slow-activation buffer (scheduled execution only; see
    /// `Tracer::slow_activations` in `safeweb-obs`). Off by default.
    /// Overridden by an explicit
    /// [`safeweb_engine::SchedulerOptions::slow_activation_ns`] passed
    /// through [`SafeWebBuilder::scheduler`].
    pub fn slow_activation_threshold(mut self, threshold: Duration) -> SafeWebBuilder {
        self.slow_activation = Some(threshold);
        self
    }

    /// Number of reactor event-loop shards each served frontend runs
    /// (default 1, clamped to ≥ 1). With more shards, accepted
    /// connections are spread across that many epoll threads, so
    /// request parsing and socket I/O scale past one core — the knob to
    /// turn when one frontend must saturate the box.
    pub fn frontend_shards(mut self, shards: usize) -> SafeWebBuilder {
        self.frontend_shards = shards.max(1);
        self
    }

    /// Declares a view on the application database (replicated to the DMZ
    /// replica as well), e.g. `("by_mid", "mdt_id")`.
    pub fn app_view(mut self, view: &str, field: &str) -> SafeWebBuilder {
        self.app_views.push((view.to_string(), field.to_string()));
        self
    }

    /// Runs the deployment in **durable mode**: the Intranet application
    /// database and the DMZ replica persist under
    /// `dir/app-intranet` and `dir/app-dmz` through write-ahead logs with
    /// periodic snapshots, and Intranet→DMZ replication resumes from the
    /// replica's durably recorded checkpoint after a restart (no full
    /// re-transfer). Views are re-declared per build via
    /// [`SafeWebBuilder::app_view`] and rebuilt from the recovered
    /// documents.
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> SafeWebBuilder {
        self.data_dir = Some(dir.into());
        self
    }

    /// Wires and starts everything: broker, engine (units subscribed),
    /// application database + read-only DMZ replica + periodic replication,
    /// and the web user store.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if a unit cannot be wired to the broker,
    /// or [`EngineError::Storage`] if durable mode
    /// ([`SafeWebBuilder::data_dir`]) cannot open or recover its stores.
    pub fn build(self) -> Result<SafeWebDeployment, EngineError> {
        let topology = ZoneTopology::ecric();

        // One registry for the whole deployment: every subsystem's
        // counters, histograms and derived gauges land here, and the
        // ops surface ([`SafeWebDeployment::serve_ops`]) snapshots it.
        let metrics = MetricsRegistry::new();
        let broker = Broker::with_metrics(BrokerOptions::default(), &metrics);

        // Application DB lives in the Intranet; replica in the DMZ.
        // Durable mode recovers both from their write-ahead logs.
        let (app_db, dmz_db) = match &self.data_dir {
            Some(dir) => {
                let open = |name: &str| {
                    DocStore::open(dir.join(name))
                        .map_err(|e| EngineError::Storage(format!("{name}: {e}")))
                };
                (open("app-intranet")?, open("app-dmz")?)
            }
            None => (DocStore::new("app-intranet"), DocStore::new("app-dmz")),
        };
        dmz_db.set_read_only(true);
        for (view, field) in &self.app_views {
            app_db.create_view(view, field);
            dmz_db.create_view(view, field);
        }
        app_db.attach_metrics(&metrics, "docstore.app");
        dmz_db.attach_metrics(&metrics, "docstore.dmz");

        // Replication pushes Intranet → DMZ; assert the firewall allows it.
        // A durable replica resumes from its recovered checkpoint instead
        // of re-transferring the whole history.
        topology
            .check(Zone::Intranet, Zone::Dmz)
            .expect("ECRIC topology always allows intranet→DMZ");
        let replication = if dmz_db.is_durable() {
            ReplicationHandle::start_durable(
                app_db.clone(),
                dmz_db.clone(),
                self.replication_interval,
            )
        } else {
            ReplicationHandle::start(app_db.clone(), dmz_db.clone(), self.replication_interval)
        };

        // Replication lag in sequence numbers: how far the DMZ replica's
        // checkpoint trails the Intranet store. A count, never content.
        let lag_source = app_db.clone();
        let lag_checkpoint = replication.checkpoint_cell();
        metrics.register_derived("replication.lag_seqs", move || {
            lag_source
                .seq()
                .saturating_sub(lag_checkpoint.load(Ordering::SeqCst)) as f64
        });

        // The declassification audit trail is process-global (every
        // `SStr` declassify anywhere counts); surfacing it per
        // deployment keeps the audit pressure visible on the ops page.
        metrics.register_derived("safeq.declassify_count", || {
            safeweb_safeq::declassify_count() as f64
        });
        metrics.register_derived("safeq.declassify_dropped", || {
            safeweb_safeq::declassify_dropped() as f64
        });

        let mut engine_options = self.engine_options;
        if let ExecutionMode::Scheduled(opts) = &mut engine_options.execution {
            if opts.metrics.is_none() {
                opts.metrics = Some(metrics.clone());
            }
            if opts.slow_activation_ns.is_none() {
                opts.slow_activation_ns = self.slow_activation.map(|d| d.as_nanos() as u64);
            }
        }
        let mut engine =
            Engine::new(Arc::new(broker.clone()), self.policy.clone()).with_options(engine_options);
        for unit in self.units {
            engine.add_unit(unit)?;
        }
        for make in self.deferred_units {
            engine.add_unit(make(app_db.clone()))?;
        }
        let engine_handle = engine.start()?;

        let web_db = Database::new("web");
        let users = UserStore::new(web_db, self.auth_config);

        Ok(SafeWebDeployment {
            topology,
            broker,
            engine_handle: Some(engine_handle),
            app_db,
            dmz_db,
            replication: Some(replication),
            users,
            policy: self.policy,
            frontend_shards: self.frontend_shards,
            metrics,
        })
    }
}

/// A running SafeWeb deployment.
pub struct SafeWebDeployment {
    topology: ZoneTopology,
    broker: Broker,
    engine_handle: Option<EngineHandle>,
    app_db: DocStore,
    dmz_db: DocStore,
    replication: Option<ReplicationHandle>,
    users: UserStore,
    policy: Policy,
    frontend_shards: usize,
    metrics: MetricsRegistry,
}

impl SafeWebDeployment {
    /// The firewall topology in force.
    pub fn topology(&self) -> &ZoneTopology {
        &self.topology
    }

    /// The embedded event broker (Intranet).
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The Intranet application database (writable by the storage unit).
    pub fn app_db(&self) -> &DocStore {
        &self.app_db
    }

    /// The DMZ replica (read-only; what the frontend sees).
    pub fn dmz_db(&self) -> &DocStore {
        &self.dmz_db
    }

    /// The web user/privilege store.
    pub fn users(&self) -> &UserStore {
        &self.users
    }

    /// The deployment's policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The Intranet→DMZ replication checkpoint after the most recent run,
    /// or `None` once replication has been stopped. In durable mode
    /// ([`SafeWebBuilder::data_dir`]) this is persisted through the DMZ
    /// replica's write-ahead log automatically and the next build resumes
    /// from it; for in-memory deployments, persist it yourself and hand
    /// it to [`safeweb_docstore::ReplicationHandle::start_from`].
    pub fn replication_checkpoint(&self) -> Option<u64> {
        self.replication.as_ref().map(|r| r.checkpoint())
    }

    /// Whether the application database and DMZ replica persist to disk
    /// (the deployment was built with [`SafeWebBuilder::data_dir`]).
    pub fn is_durable(&self) -> bool {
        self.app_db.is_durable()
    }

    /// The deployment-wide metrics registry. Every subsystem reports
    /// here — broker (`broker.*`), scheduler (`sched.*`), document
    /// stores (`docstore.app.*` / `docstore.dmz.*`), replication lag
    /// (`replication.lag_seqs`), declassification audit (`safeq.*`),
    /// and, once served, the frontend (`web.*`, `frontend.*`). Call
    /// [`safeweb_obs::MetricsRegistry::snapshot`] for one consistent
    /// JSON view, or serve it over HTTP with
    /// [`SafeWebDeployment::serve_ops`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Violations recorded by the engine so far.
    pub fn engine_violations(&self) -> Vec<safeweb_engine::Violation> {
        self.engine_handle
            .as_ref()
            .map(|h| h.violations())
            .unwrap_or_default()
    }

    /// Messages queued in unit inboxes right now, summed across all
    /// units (scheduled execution mode only; `0` otherwise or after
    /// [`SafeWebDeployment::stop`]). Pair with
    /// [`safeweb_http::HttpServer::queued_bytes`] on the served frontend
    /// to see which side of the pipeline is backed up.
    #[deprecated(
        since = "0.1.0",
        note = "read `sched.queued_messages` from `SafeWebDeployment::metrics()` instead"
    )]
    pub fn engine_queued_messages(&self) -> usize {
        self.engine_handle
            .as_ref()
            .map(|h| h.queued_messages())
            .unwrap_or_default()
    }

    /// Creates a frontend application bound to the DMZ replica and the
    /// user store; add routes, then pass to [`SafeWebDeployment::serve`].
    pub fn new_frontend(&self) -> SafeWebApp {
        // External users reach the DMZ; assert the direction is legal.
        self.topology
            .check(Zone::External, Zone::Dmz)
            .expect("ECRIC topology always allows external→DMZ");
        SafeWebApp::new(self.users.clone(), self.dmz_db.clone())
    }

    /// Serves a configured frontend over HTTP, on the builder's
    /// [`SafeWebBuilder::frontend_shards`] reactor shards.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn serve(&self, app: SafeWebApp, addr: &str) -> std::io::Result<HttpServer> {
        app.attach_metrics(&self.metrics);
        let server =
            HttpServer::bind_sharded(addr, self.frontend_shards, Arc::new(app).into_handler())?;
        server.attach_metrics(&self.metrics, "frontend");
        Ok(server)
    }

    /// Serves the operator surface on its **own** listener (never the
    /// public frontend address): `/__obs/metrics`, `/__obs/health` and
    /// `/__obs/trace/:id`. Every route requires HTTP basic credentials
    /// for an **admin** user from [`SafeWebDeployment::users`]; anyone
    /// else gets 401/403 and no body. See [`crate::ops`] for the
    /// label-safety contract of what these endpoints may expose.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn serve_ops(&self, addr: &str) -> std::io::Result<HttpServer> {
        let state = ops::OpsState {
            metrics: self.metrics.clone(),
            users: self.users.clone(),
            app_db: self.app_db.clone(),
            dmz_db: self.dmz_db.clone(),
        };
        HttpServer::bind(addr, ops::handler(state))
    }

    /// Stops the engine and replication (idempotent; also runs on drop).
    pub fn stop(&mut self) {
        if let Some(h) = self.engine_handle.take() {
            h.stop();
        }
        if let Some(r) = self.replication.take() {
            r.stop();
        }
    }
}

impl Drop for SafeWebDeployment {
    fn drop(&mut self) {
        self.stop();
    }
}
