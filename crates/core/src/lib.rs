//! # safeweb-core
//!
//! The umbrella crate of the SafeWeb middleware — a Rust reproduction of
//! *SafeWeb: A Middleware for Securing Ruby-Based Web Applications*
//! (Hosek et al., Middleware 2011).
//!
//! SafeWeb is a "safety net" for multi-tier web applications handling
//! confidential data: it decouples confidential-data processing (an
//! event-driven backend) from request handling (a web frontend), tracks
//! security labels end-to-end across both tiers, and checks them at every
//! component boundary so that implementation bugs cannot disclose data.
//!
//! This crate wires the subsystem crates into the Figure 1/Figure 4
//! topology:
//!
//! * [`safeweb_broker`] — the IFC-aware event broker,
//! * [`safeweb_engine`] — the unit engine with the IFC jail,
//! * [`safeweb_docstore`] — the application database with one-way
//!   replication into a read-only DMZ replica (requirement S1),
//! * [`safeweb_web`] + [`safeweb_taint`] — the enforcing frontend
//!   (requirement S2),
//! * [`ZoneTopology`] — the ECRIC firewall matrix.
//!
//! Use [`SafeWebBuilder`] to stand up a whole deployment; see
//! `examples/mdt_portal.rs` for the complete MDT web portal.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod deployment;
pub mod ops;
mod zones;

pub use deployment::{SafeWebBuilder, SafeWebDeployment};
pub use zones::{Zone, ZoneTopology, ZoneViolation};

// Re-export the subsystem crates under one roof, so applications can
// depend on `safeweb-core` alone.
pub use safeweb_broker as broker;
pub use safeweb_docstore as docstore;
pub use safeweb_engine as engine;
pub use safeweb_events as events;
pub use safeweb_http as http;
pub use safeweb_json as json;
pub use safeweb_labels as labels;
pub use safeweb_obs as obs;
pub use safeweb_relstore as relstore;
pub use safeweb_taint as taint;
pub use safeweb_web as web;
