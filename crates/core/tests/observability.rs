//! Observability integration: one HTTP request's trace id stitches the
//! whole pipeline — frontend → broker → engine → docstore — back
//! together through the ops surface, and that surface is admin-gated.

use std::time::{Duration, Instant};

use safeweb_core::SafeWebBuilder;
use safeweb_engine::{UnitError, UnitSpec};
use safeweb_events::Event;
use safeweb_http::{client, Method, Request};
use safeweb_labels::{Label, Privilege, PrivilegeSet};
use safeweb_taint::SStr;
use safeweb_web::{Ctx, SResponse};

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "condition never became true");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A deployment whose frontend POST route publishes into the broker and
/// whose storage unit persists the result — the Figure 1 write path.
fn submission_deployment() -> safeweb_core::SafeWebDeployment {
    let deployment = SafeWebBuilder::new()
        .policy(
            "unit storage {\n privileged \n clearance label:conf:e/* \n}"
                .parse()
                .unwrap(),
        )
        .auth_config(safeweb_web::AuthConfig {
            hash_iterations: 300,
        })
        .replication_interval(Duration::from_millis(15))
        .unit_with_app_db(|db| {
            UnitSpec::new("storage").subscribe("/submit", None, move |jail, event| {
                let _io = jail.io()?;
                db.put(
                    &format!("s-{}", event.attr("n").unwrap_or("0")),
                    safeweb_json::jobject! {"kind" => "submission"},
                    *jail.labels(),
                    None,
                )
                .map_err(|e| UnitError::Application(e.to_string()))?;
                Ok(())
            })
        })
        .build()
        .expect("deployment starts");

    deployment
        .users()
        .create_user("operator", "pw", &PrivilegeSet::new(), false)
        .unwrap();
    let mut cleared = PrivilegeSet::new();
    cleared.grant(Privilege::clearance(Label::conf("e", "mdt/a")));
    deployment
        .users()
        .create_user("admin", "pw", &cleared, true)
        .unwrap();
    deployment
}

#[test]
fn one_request_reconstructs_as_an_ordered_span_chain() {
    let deployment = submission_deployment();

    let mut app = deployment.new_frontend();
    let broker = deployment.broker().clone();
    app.post("/submit", move |_ctx: &Ctx<'_>| {
        // Published under the request's ambient trace scope, so the
        // event (and everything downstream of it) carries the id.
        broker.publish(
            &Event::new("/submit")
                .unwrap()
                .with_attr("n", "1")
                .with_labels([Label::conf("e", "mdt/a")]),
        );
        SResponse::text(SStr::public("accepted"))
    });

    let response =
        app.handle(&Request::new(Method::Post, "/submit").with_basic_auth("operator", "pw"));
    assert_eq!(response.status(), 200);
    let trace_id = response
        .headers()
        .get("x-safeweb-trace")
        .expect("routed responses carry the trace header")
        .to_string();

    // The write path completes asynchronously (broker → engine →
    // store); the document landing means the docstore span exists.
    wait_until(Duration::from_secs(10), || deployment.app_db().len() == 1);

    // Reconstruct through the ops surface, exactly as an operator would.
    let ops = deployment.serve_ops("127.0.0.1:0").expect("ops binds");
    let addr = ops.addr().to_string();
    let fetch = |user: &str| {
        client::send(
            &addr,
            Request::new(Method::Get, &format!("/__obs/trace/{trace_id}"))
                .with_basic_auth(user, "pw"),
        )
        .expect("ops request")
    };

    // The engine records its span just after the storage callback
    // returns, so poll until all four components appear.
    let mut components: Vec<String> = Vec::new();
    wait_until(Duration::from_secs(10), || {
        let response = fetch("admin");
        assert_eq!(response.status(), 200);
        let body = safeweb_json::Value::parse(response.body_str().unwrap()).unwrap();
        assert_eq!(
            body.get("trace").and_then(|t| t.as_str()),
            Some(trace_id.as_str())
        );
        // Spans arrive ordered by start time; keep first occurrence of
        // each component to read the causal chain.
        components.clear();
        for span in body.get("spans").and_then(|s| s.as_array()).unwrap() {
            let component = span.get("component").and_then(|c| c.as_str()).unwrap();
            if !components.iter().any(|c| c == component) {
                components.push(component.to_string());
            }
        }
        components.len() >= 4
    });
    assert_eq!(
        components,
        ["frontend", "broker", "engine", "docstore"],
        "the span chain reads in pipeline order"
    );

    drop(ops);
}

#[test]
fn ops_surface_denies_under_cleared_principals() {
    let deployment = submission_deployment();
    let ops = deployment.serve_ops("127.0.0.1:0").expect("ops binds");
    let addr = ops.addr().to_string();

    for path in ["/__obs/metrics", "/__obs/health", "/__obs/trace/1234"] {
        // Anonymous: 401, and no telemetry in the body.
        let anon = client::send(&addr, Request::new(Method::Get, path)).unwrap();
        assert_eq!(anon.status(), 401, "{path} must demand credentials");
        assert!(!anon.body_str().unwrap_or_default().contains('{'));

        // Authenticated but not admin: 403, same opacity.
        let peon = client::send(
            &addr,
            Request::new(Method::Get, path).with_basic_auth("operator", "pw"),
        )
        .unwrap();
        assert_eq!(peon.status(), 403, "{path} must require the admin bit");
        assert!(!peon.body_str().unwrap_or_default().contains('{'));
    }
}

#[test]
fn ops_metrics_and_health_render_for_admins() {
    let deployment = submission_deployment();
    deployment.broker().publish(
        &Event::new("/submit")
            .unwrap()
            .with_attr("n", "7")
            .with_labels([Label::conf("e", "mdt/a")]),
    );
    wait_until(Duration::from_secs(10), || deployment.app_db().len() == 1);

    let ops = deployment.serve_ops("127.0.0.1:0").expect("ops binds");
    let addr = ops.addr().to_string();

    let metrics = client::send(
        &addr,
        Request::new(Method::Get, "/__obs/metrics").with_basic_auth("admin", "pw"),
    )
    .unwrap();
    assert_eq!(metrics.status(), 200);
    let body = safeweb_json::Value::parse(metrics.body_str().unwrap()).unwrap();
    assert!(
        body.get("broker.published")
            .and_then(|v| v.as_i64())
            .unwrap()
            >= 1,
        "broker counters are live in the deployment registry"
    );
    assert!(
        body.get("docstore.app.put_ns")
            .and_then(|h| h.get("count"))
            .and_then(|c| c.as_i64())
            .unwrap()
            >= 1,
        "the app store's put histogram recorded the write"
    );

    let health = client::send(
        &addr,
        Request::new(Method::Get, "/__obs/health").with_basic_auth("admin", "pw"),
    )
    .unwrap();
    assert_eq!(health.status(), 200);
    let body = safeweb_json::Value::parse(health.body_str().unwrap()).unwrap();
    assert_eq!(body.get("status").and_then(|s| s.as_str()), Some("ok"));
    assert!(body.get("stores").and_then(|s| s.get("app")).is_some());
    assert!(body.get("queues").is_some());

    // Malformed and unknown trace ids fail closed.
    let bad = client::send(
        &addr,
        Request::new(Method::Get, "/__obs/trace/zzz").with_basic_auth("admin", "pw"),
    )
    .unwrap();
    assert_eq!(bad.status(), 400);
    let unknown = client::send(
        &addr,
        Request::new(Method::Get, "/__obs/trace/00000000000000ff").with_basic_auth("admin", "pw"),
    )
    .unwrap();
    assert_eq!(unknown.status(), 404);
}
