//! Integration tests for the deployment builder: the Figure 1 wiring as a
//! unit — units publish through the broker, the storage path lands in the
//! Intranet DB, replication mirrors into the read-only DMZ replica, and
//! the frontend created by the deployment enforces labels.

use std::time::{Duration, Instant};

use safeweb_core::{SafeWebBuilder, Zone};
use safeweb_engine::{Relabel, UnitError, UnitSpec};
use safeweb_events::Event;
use safeweb_http::{Method, Request};
use safeweb_labels::{Label, Privilege, PrivilegeSet};
use safeweb_taint::SStr;
use safeweb_web::{Ctx, SResponse};

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "condition never became true");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn full_wiring_and_replication() {
    let deployment = SafeWebBuilder::new()
        .policy(
            "
            unit storage {\n privileged \n clearance label:conf:e/* \n}
            "
            .parse()
            .unwrap(),
        )
        .replication_interval(Duration::from_millis(15))
        .auth_config(safeweb_web::AuthConfig { hash_iterations: 300 })
        .app_view("by_kind", "kind")
        .unit_with_app_db(|db| {
            UnitSpec::new("storage").subscribe("/result", None, move |jail, event| {
                let _io = jail.io()?;
                db.put(
                    &format!("r-{}", event.attr("n").unwrap_or("0")),
                    safeweb_json::jobject! {"kind" => "result", "n" => event.attr("n").unwrap_or("0")},
                    *jail.labels(),
                    None,
                )
                .map_err(|e| UnitError::Application(e.to_string()))?;
                Ok(())
            })
        })
        .build()
        .expect("deployment starts");

    // Publish a labelled result through the broker.
    deployment.broker().publish(
        &Event::new("/result")
            .unwrap()
            .with_attr("n", "1")
            .with_labels([Label::conf("e", "mdt/a")]),
    );

    // It lands in the Intranet DB and replicates into the DMZ replica.
    wait_until(Duration::from_secs(10), || deployment.app_db().len() == 1);
    wait_until(Duration::from_secs(10), || deployment.dmz_db().len() == 1);
    let doc = deployment.dmz_db().get("r-1").unwrap();
    assert!(doc.labels().contains(&Label::conf("e", "mdt/a")));
    assert!(deployment.dmz_db().is_read_only());

    // A frontend bound to the deployment enforces the stored labels.
    let mut cleared = PrivilegeSet::new();
    cleared.grant(Privilege::clearance(Label::conf("e", "mdt/a")));
    deployment
        .users()
        .create_user("member", "pw", &cleared, false)
        .unwrap();
    deployment
        .users()
        .create_user("outsider", "pw", &PrivilegeSet::new(), false)
        .unwrap();

    let mut app = deployment.new_frontend();
    app.get("/results", |ctx: &Ctx<'_>| {
        let docs = ctx.records_by("by_kind", "result");
        let parts: Vec<SStr> = docs.iter().map(|d| d.to_json_sstr()).collect();
        SResponse::json(SStr::join(parts.iter(), ","))
    });

    let ok = app.handle(&Request::new(Method::Get, "/results").with_basic_auth("member", "pw"));
    assert_eq!(ok.status(), 200);
    assert!(ok.body_str().unwrap().contains("result"));
    let denied =
        app.handle(&Request::new(Method::Get, "/results").with_basic_auth("outsider", "pw"));
    assert_eq!(denied.status(), 403);

    assert!(deployment.engine_violations().is_empty());
}

#[test]
fn builder_rejects_duplicate_units() {
    let result = SafeWebBuilder::new()
        .unit(UnitSpec::new("u"))
        .unit(UnitSpec::new("u"))
        .build();
    assert!(result.is_err());
}

#[test]
fn topology_is_ecric_shaped() {
    let deployment = SafeWebBuilder::new().build().unwrap();
    let fw = deployment.topology();
    assert!(fw.is_allowed(Zone::Intranet, Zone::Dmz));
    assert!(!fw.is_allowed(Zone::Dmz, Zone::Intranet));
    assert!(!fw.is_allowed(Zone::External, Zone::Intranet));
}

#[test]
fn stop_is_idempotent_and_runs_on_drop() {
    let mut deployment = SafeWebBuilder::new()
        .unit(UnitSpec::new("noop").subscribe("/t", None, |_jail, _event| Ok(())))
        .build()
        .unwrap();
    deployment.stop();
    deployment.stop(); // second call is a no-op
    drop(deployment); // drop after stop must not panic
}

/// Durable mode: a deployment restarted on the same data directory
/// recovers both stores, keeps views queryable (rebuilt from the
/// recovered documents), and resumes replication from the persisted
/// checkpoint instead of re-transferring the history.
#[test]
fn durable_deployment_recovers_and_resumes_replication() {
    let dir = std::env::temp_dir().join(format!("safeweb-core-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let build = || {
        SafeWebBuilder::new()
            .data_dir(dir.clone())
            .replication_interval(Duration::from_millis(10))
            .auth_config(safeweb_web::AuthConfig {
                hash_iterations: 300,
            })
            .app_view("by_kind", "kind")
            .build()
            .expect("durable deployment starts")
    };

    let first_seq;
    {
        let deployment = build();
        assert!(deployment.is_durable());
        deployment
            .app_db()
            .put(
                "r-1",
                safeweb_json::jobject! {"kind" => "result"},
                safeweb_labels::LabelSet::new(),
                None,
            )
            .unwrap();
        wait_until(Duration::from_secs(10), || deployment.dmz_db().len() == 1);
        first_seq = deployment.app_db().seq();
        wait_until(Duration::from_secs(10), || {
            deployment.dmz_db().replication_checkpoint_persisted() == Some(first_seq)
        });
    } // deployment dropped: engine + replication stop, stores close

    let deployment = build();
    // Both stores recovered, including the rebuilt view index.
    assert_eq!(deployment.app_db().len(), 1);
    assert_eq!(deployment.dmz_db().len(), 1);
    assert_eq!(
        deployment
            .dmz_db()
            .query_view("by_kind", &safeweb_json::Value::from("result"))
            .unwrap()
            .len(),
        1
    );
    assert!(deployment.dmz_db().is_read_only());
    let replica_seq = deployment.dmz_db().seq();

    // New writes replicate incrementally: the replica's sequence number
    // advances by exactly one document, proving nothing was re-pushed.
    deployment
        .app_db()
        .put(
            "r-2",
            safeweb_json::jobject! {"kind" => "result"},
            safeweb_labels::LabelSet::new(),
            None,
        )
        .unwrap();
    wait_until(Duration::from_secs(10), || {
        deployment.dmz_db().get("r-2").is_some()
    });
    assert_eq!(deployment.dmz_db().seq(), replica_seq + 1);
    drop(deployment);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn jailed_unit_cannot_leak_through_deployment() {
    let deployment = SafeWebBuilder::new()
        .policy(
            "unit leaky {\n clearance label:conf:e/* \n}"
                .parse()
                .unwrap(),
        )
        .unit(
            UnitSpec::new("leaky").subscribe("/in", None, |jail, _event| {
                jail.publish(
                    Event::new("/out").map_err(|e| UnitError::BadEvent(e.to_string()))?,
                    Relabel::keep().remove_all(), // bug: tries to declassify
                )
            }),
        )
        .build()
        .unwrap();
    let rx = deployment
        .broker()
        .subscribe("obs", "1", "/out", None, PrivilegeSet::new());
    deployment.broker().publish(
        &Event::new("/in")
            .unwrap()
            .with_labels([Label::conf("e", "p/1")]),
    );
    wait_until(Duration::from_secs(10), || {
        !deployment.engine_violations().is_empty()
    });
    assert!(rx.try_recv().is_err(), "nothing must reach /out");
}
