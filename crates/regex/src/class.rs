//! Character classes: `[a-z0-9_]`, negation, and the named escapes
//! `\d \w \s` (and their negations).

/// A set of characters, stored as sorted inclusive ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    ranges: Vec<(char, char)>,
    negated: bool,
}

impl CharClass {
    /// Creates an empty, non-negated class.
    pub fn new() -> CharClass {
        CharClass {
            ranges: Vec::new(),
            negated: false,
        }
    }

    /// Adds a single character.
    pub fn push_char(&mut self, c: char) {
        self.ranges.push((c, c));
    }

    /// Adds an inclusive range. Ranges may overlap; matching is a linear
    /// scan over the (small) range list.
    pub fn push_range(&mut self, lo: char, hi: char) {
        self.ranges.push((lo, hi));
    }

    /// Marks the class as negated (`[^...]`).
    pub fn negate(&mut self) {
        self.negated = !self.negated;
    }

    /// Whether the class is negated.
    pub fn is_negated(&self) -> bool {
        self.negated
    }

    /// The `\d` class: ASCII digits.
    pub fn digit() -> CharClass {
        let mut c = CharClass::new();
        c.push_range('0', '9');
        c
    }

    /// The `\w` class: ASCII alphanumerics plus underscore.
    pub fn word() -> CharClass {
        let mut c = CharClass::new();
        c.push_range('a', 'z');
        c.push_range('A', 'Z');
        c.push_range('0', '9');
        c.push_char('_');
        c
    }

    /// The `\s` class: ASCII whitespace.
    pub fn space() -> CharClass {
        let mut c = CharClass::new();
        for ch in [' ', '\t', '\n', '\r', '\u{000B}', '\u{000C}'] {
            c.push_char(ch);
        }
        c
    }

    /// Extends this class with all ranges of `other` (ignoring `other`'s
    /// negation flag — used to splice `\d` etc. into bracket expressions).
    pub fn extend_ranges(&mut self, other: &CharClass) {
        self.ranges.extend_from_slice(&other.ranges);
    }

    /// Whether `c` is matched by this class.
    pub fn matches(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }
}

impl Default for CharClass {
    fn default() -> CharClass {
        CharClass::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranges() {
        let mut c = CharClass::new();
        c.push_range('a', 'f');
        c.push_char('z');
        assert!(c.matches('a'));
        assert!(c.matches('f'));
        assert!(c.matches('z'));
        assert!(!c.matches('g'));
    }

    #[test]
    fn negation() {
        let mut c = CharClass::digit();
        c.negate();
        assert!(!c.matches('5'));
        assert!(c.matches('x'));
    }

    #[test]
    fn named_classes() {
        assert!(CharClass::word().matches('_'));
        assert!(CharClass::word().matches('Q'));
        assert!(!CharClass::word().matches('-'));
        assert!(CharClass::space().matches('\t'));
        assert!(!CharClass::space().matches('x'));
    }
}
