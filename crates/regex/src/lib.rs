//! # safeweb-regex
//!
//! A small backtracking regular-expression engine with capture groups.
//!
//! SafeWeb's taint-tracking library must label the results of regular
//! expression operations — the paper (§4.4) specifically chose the Rubinius
//! runtime because it exposes the regex variables (`$~`, `$1`, ...) needed
//! to propagate labels through matches. This crate is the substrate for
//! that: `safeweb-taint` wraps [`Regex::captures`] and labels every
//! extracted group with the subject string's labels. It is implemented
//! in-tree because the reproduction's dependency allow-list has no regex
//! crate.
//!
//! Supported syntax: literals, `.`, classes `[a-z0-9_]`/`[^...]` (with
//! `\d \w \s` shorthands), escapes, anchors `^` `$`, capturing `(...)` and
//! non-capturing `(?:...)` groups, alternation, and quantifiers
//! `* + ? {m} {m,} {m,n}` each with an optional lazy `?` suffix.
//!
//! ```
//! use safeweb_regex::Regex;
//!
//! let re = Regex::new(r"(\d{4})-(\d{2})")?;
//! let caps = re.captures("report 2011-09 final").expect("match");
//! assert_eq!(caps.get(1).map(|m| m.as_str()), Some("2011"));
//! assert_eq!(caps.get(2).map(|m| m.as_str()), Some("09"));
//! # Ok::<(), safeweb_regex::ParseRegexError>(())
//! ```
//!
//! The matcher has a fixed backtracking step budget (1M steps); inputs that
//! exceed it report "no match" instead of hanging. This is acceptable for
//! SafeWeb's use (application-authored patterns over short strings) and is
//! the same trade-off Ruby's own backtracking engine makes in spirit.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod class;
mod parse;
mod vm;

pub use class::CharClass;
pub use parse::ParseRegexError;

use std::fmt;
use std::str::FromStr;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    program: vm::Program,
    pattern: String,
}

/// A single match: its location within the subject and the matched text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match<'t> {
    text: &'t str,
    /// Byte offsets into the subject.
    start: usize,
    end: usize,
}

impl<'t> Match<'t> {
    /// Start of the match, as a byte offset.
    pub fn start(&self) -> usize {
        self.start
    }

    /// End of the match (exclusive), as a byte offset.
    pub fn end(&self) -> usize {
        self.end
    }

    /// The matched text.
    pub fn as_str(&self) -> &'t str {
        &self.text[self.start..self.end]
    }

    /// Whether the match is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Length of the match in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }
}

/// The capture groups of a successful match. Group 0 is the whole match.
#[derive(Debug, Clone)]
pub struct Captures<'t> {
    text: &'t str,
    /// Byte-offset spans per group; `None` for unparticipating groups.
    spans: Vec<Option<(usize, usize)>>,
}

impl<'t> Captures<'t> {
    /// The `i`-th group (0 = whole match), if it participated in the match.
    pub fn get(&self, i: usize) -> Option<Match<'t>> {
        let (start, end) = (*self.spans.get(i)?)?;
        Some(Match {
            text: self.text,
            start,
            end,
        })
    }

    /// Number of groups, including group 0.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Captures always contain at least group 0.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over all groups in index order.
    pub fn iter(&self) -> impl Iterator<Item = Option<Match<'t>>> + '_ {
        (0..self.spans.len()).map(|i| self.get(i))
    }
}

impl Regex {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRegexError`] when the pattern is syntactically
    /// invalid or uses unsupported constructs (backreferences, lookaround,
    /// named groups).
    pub fn new(pattern: &str) -> Result<Regex, ParseRegexError> {
        let parsed = parse::parse(pattern)?;
        Ok(Regex {
            program: vm::compile(&parsed.node, parsed.group_count),
            pattern: pattern.to_string(),
        })
    }

    /// The source pattern.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Number of capturing groups (excluding group 0).
    pub fn group_count(&self) -> usize {
        self.program.group_count as usize
    }

    /// Whether the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        vm::search(&self.program, &chars, 0).is_some()
    }

    /// The first match in `text`, if any.
    pub fn find<'t>(&self, text: &'t str) -> Option<Match<'t>> {
        self.captures(text).and_then(|c| c.get(0))
    }

    /// The first match with all capture groups.
    pub fn captures<'t>(&self, text: &'t str) -> Option<Captures<'t>> {
        let chars: Vec<char> = text.chars().collect();
        let byte_of = byte_offsets(text, &chars);
        let saves = vm::search(&self.program, &chars, 0)?;
        Some(self.captures_from_saves(text, &byte_of, &saves))
    }

    fn captures_from_saves<'t>(
        &self,
        text: &'t str,
        byte_of: &[usize],
        saves: &[Option<usize>],
    ) -> Captures<'t> {
        let groups = self.program.group_count as usize + 1;
        let mut spans = Vec::with_capacity(groups);
        for g in 0..groups {
            let span = match (
                saves.get(g * 2).copied().flatten(),
                saves.get(g * 2 + 1).copied().flatten(),
            ) {
                (Some(s), Some(e)) if s <= e => Some((byte_of[s], byte_of[e])),
                _ => None,
            };
            spans.push(span);
        }
        Captures { text, spans }
    }

    /// Iterates over all non-overlapping matches, left to right.
    pub fn find_iter<'r, 't>(&'r self, text: &'t str) -> FindIter<'r, 't> {
        FindIter {
            regex: self,
            text,
            chars: text.chars().collect(),
            pos: 0,
            done: false,
        }
    }

    /// Replaces every non-overlapping match with `replacement`
    /// (`$0`..`$9` in the replacement refer to capture groups; `$$` is a
    /// literal dollar).
    pub fn replace_all(&self, text: &str, replacement: &str) -> String {
        let chars: Vec<char> = text.chars().collect();
        let byte_of = byte_offsets(text, &chars);
        let mut out = String::new();
        let mut pos = 0usize; // char index
        while let Some(saves) = vm::search(&self.program, &chars, pos) {
            let caps = self.captures_from_saves(text, &byte_of, &saves);
            let m = caps.get(0).expect("group 0 present");
            out.push_str(&text[byte_of[pos]..m.start()]);
            expand_replacement(replacement, &caps, &mut out);
            let match_end_char = char_index_of(&byte_of, m.end());
            if match_end_char == pos && m.is_empty() {
                // Empty match: emit one char and advance to avoid looping.
                if pos < chars.len() {
                    out.push(chars[pos]);
                }
                pos += 1;
                if pos > chars.len() {
                    break;
                }
            } else {
                pos = match_end_char;
            }
        }
        if pos <= chars.len() {
            out.push_str(&text[byte_of[pos.min(chars.len())]..]);
        }
        out
    }

    /// Splits `text` around every match of the pattern.
    pub fn split<'t>(&self, text: &'t str) -> Vec<&'t str> {
        let mut parts = Vec::new();
        let mut last = 0usize;
        for m in self.find_iter(text) {
            parts.push(&text[last..m.start()]);
            last = m.end();
        }
        parts.push(&text[last..]);
        parts
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pattern)
    }
}

impl FromStr for Regex {
    type Err = ParseRegexError;

    fn from_str(s: &str) -> Result<Regex, ParseRegexError> {
        Regex::new(s)
    }
}

/// Iterator over non-overlapping matches; see [`Regex::find_iter`].
#[derive(Debug)]
pub struct FindIter<'r, 't> {
    regex: &'r Regex,
    text: &'t str,
    chars: Vec<char>,
    pos: usize, // char index
    done: bool,
}

impl<'r, 't> Iterator for FindIter<'r, 't> {
    type Item = Match<'t>;

    fn next(&mut self) -> Option<Match<'t>> {
        if self.done || self.pos > self.chars.len() {
            return None;
        }
        let byte_of = byte_offsets(self.text, &self.chars);
        let saves = vm::search(&self.regex.program, &self.chars, self.pos)?;
        let (s, e) = (saves[0]?, saves[1]?);
        let m = Match {
            text: self.text,
            start: byte_of[s],
            end: byte_of[e],
        };
        if s == e {
            // Empty match: advance one char to guarantee progress.
            self.pos = e + 1;
        } else {
            self.pos = e;
        }
        if self.pos > self.chars.len() {
            self.done = true;
        }
        Some(m)
    }
}

/// Maps char index → byte offset (with a final sentinel = text.len()).
fn byte_offsets(text: &str, chars: &[char]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(chars.len() + 1);
    let mut b = 0;
    for c in chars {
        offsets.push(b);
        b += c.len_utf8();
    }
    offsets.push(text.len());
    offsets
}

fn char_index_of(byte_of: &[usize], byte: usize) -> usize {
    byte_of
        .iter()
        .position(|&b| b == byte)
        .expect("byte offset on char boundary")
}

fn expand_replacement(replacement: &str, caps: &Captures<'_>, out: &mut String) {
    let mut it = replacement.chars().peekable();
    while let Some(c) = it.next() {
        if c == '$' {
            match it.peek() {
                Some('$') => {
                    it.next();
                    out.push('$');
                }
                Some(d) if d.is_ascii_digit() => {
                    let idx = d.to_digit(10).expect("digit") as usize;
                    it.next();
                    if let Some(m) = caps.get(idx) {
                        out.push_str(m.as_str());
                    }
                }
                _ => out.push('$'),
            }
        } else {
            out.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let re = Regex::new("cancer").unwrap();
        assert!(re.is_match("breast cancer registry"));
        assert!(!re.is_match("benign"));
        let m = re.find("breast cancer").unwrap();
        assert_eq!((m.start(), m.end()), (7, 13));
        assert_eq!(m.as_str(), "cancer");
    }

    #[test]
    fn anchors() {
        assert!(Regex::new("^ab$").unwrap().is_match("ab"));
        assert!(!Regex::new("^ab$").unwrap().is_match("xab"));
        assert!(!Regex::new("^ab$").unwrap().is_match("abx"));
    }

    #[test]
    fn quantifiers_greedy_and_lazy() {
        let greedy = Regex::new("a.*b").unwrap();
        assert_eq!(greedy.find("aXbYb").unwrap().as_str(), "aXbYb");
        let lazy = Regex::new("a.*?b").unwrap();
        assert_eq!(lazy.find("aXbYb").unwrap().as_str(), "aXb");
    }

    #[test]
    fn counted_repetition() {
        let re = Regex::new(r"^\d{2,4}$").unwrap();
        assert!(!re.is_match("1"));
        assert!(re.is_match("12"));
        assert!(re.is_match("1234"));
        assert!(!re.is_match("12345"));
    }

    #[test]
    fn alternation_prefers_left() {
        let re = Regex::new("ab|a").unwrap();
        assert_eq!(re.find("ab").unwrap().as_str(), "ab");
    }

    #[test]
    fn captures_nested_groups() {
        let re = Regex::new(r"(\w+)@((\w+)\.org)").unwrap();
        let caps = re.captures("mail bob@nhs.org now").unwrap();
        assert_eq!(caps.get(0).unwrap().as_str(), "bob@nhs.org");
        assert_eq!(caps.get(1).unwrap().as_str(), "bob");
        assert_eq!(caps.get(2).unwrap().as_str(), "nhs.org");
        assert_eq!(caps.get(3).unwrap().as_str(), "nhs");
        assert_eq!(caps.len(), 4);
    }

    #[test]
    fn unparticipating_group_is_none() {
        let re = Regex::new("(a)|(b)").unwrap();
        let caps = re.captures("b").unwrap();
        assert!(caps.get(1).is_none());
        assert_eq!(caps.get(2).unwrap().as_str(), "b");
    }

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new(r"\d+").unwrap();
        let all: Vec<&str> = re.find_iter("a1b22c333").map(|m| m.as_str()).collect();
        assert_eq!(all, vec!["1", "22", "333"]);
    }

    #[test]
    fn find_iter_with_empty_matches_terminates() {
        let re = Regex::new("a*").unwrap();
        let all: Vec<usize> = re.find_iter("baa b").map(|m| m.len()).collect();
        assert!(!all.is_empty());
    }

    #[test]
    fn replace_all_with_groups() {
        let re = Regex::new(r"(\d{4})-(\d{2})-(\d{2})").unwrap();
        let out = re.replace_all("born 2011-09-05.", "$3/$2/$1");
        assert_eq!(out, "born 05/09/2011.");
    }

    #[test]
    fn replace_all_literal_dollar() {
        let re = Regex::new("x").unwrap();
        assert_eq!(re.replace_all("axa", "$$"), "a$a");
    }

    #[test]
    fn split_on_pattern() {
        let re = Regex::new(r",\s*").unwrap();
        assert_eq!(re.split("a, b,c"), vec!["a", "b", "c"]);
        assert_eq!(re.split("abc"), vec!["abc"]);
    }

    #[test]
    fn unicode_subjects() {
        let re = Regex::new("é+").unwrap();
        let m = re.find("caféé!").unwrap();
        assert_eq!(m.as_str(), "éé");
        // Byte offsets respect UTF-8.
        assert_eq!(&"caféé!"[m.start()..m.end()], "éé");
    }

    #[test]
    fn classes_and_shorthands() {
        assert!(Regex::new(r"^\w+$").unwrap().is_match("ab_1"));
        assert!(!Regex::new(r"^\w+$").unwrap().is_match("a b"));
        assert!(Regex::new(r"^[^x]+$").unwrap().is_match("abc"));
        assert!(!Regex::new(r"^[^x]+$").unwrap().is_match("axc"));
        assert!(Regex::new(r"^\S+$").unwrap().is_match("abc"));
    }

    #[test]
    fn pathological_pattern_does_not_hang() {
        // (a+)+b against aaaa...c is the classic catastrophic case; the
        // step budget turns it into a "no match".
        let re = Regex::new("(a+)+b").unwrap();
        let subject = "a".repeat(60) + "c";
        assert!(!re.is_match(&subject));
    }

    #[test]
    fn group_count_exposed() {
        assert_eq!(Regex::new("(a)(?:b)(c)").unwrap().group_count(), 2);
    }
}
