//! Compilation to a backtracking VM and execution.
//!
//! The AST compiles to a classic instruction set (`Char`, `Split`, `Jmp`,
//! `Save`, ...). Execution is an explicit-stack backtracking interpreter
//! with a step budget so that pathological patterns cannot hang the
//! process; exceeding the budget reports "no match" and is documented on
//! [`crate::Regex`].

use crate::class::CharClass;
use crate::parse::Node;

#[derive(Debug, Clone)]
pub(crate) enum Inst {
    Char(char),
    Any,
    Class(CharClass),
    Start,
    End,
    /// Try `a` first (preferred), then `b`.
    Split(usize, usize),
    Jmp(usize),
    Save(usize),
    Match,
}

#[derive(Debug, Clone)]
pub(crate) struct Program {
    pub insts: Vec<Inst>,
    pub group_count: u32,
}

pub(crate) fn compile(node: &Node, group_count: u32) -> Program {
    let mut insts = Vec::new();
    // Slot 0/1: whole-match bounds.
    insts.push(Inst::Save(0));
    emit(node, &mut insts);
    insts.push(Inst::Save(1));
    insts.push(Inst::Match);
    Program { insts, group_count }
}

fn emit(node: &Node, out: &mut Vec<Inst>) {
    match node {
        Node::Empty => {}
        Node::Char(c) => out.push(Inst::Char(*c)),
        Node::AnyChar => out.push(Inst::Any),
        Node::Class(c) => out.push(Inst::Class(c.clone())),
        Node::Start => out.push(Inst::Start),
        Node::End => out.push(Inst::End),
        Node::Concat(parts) => {
            for p in parts {
                emit(p, out);
            }
        }
        Node::Alt(branches) => emit_alt(branches, out),
        Node::Group { index, node } => {
            if let Some(i) = index {
                out.push(Inst::Save((*i as usize) * 2));
                emit(node, out);
                out.push(Inst::Save((*i as usize) * 2 + 1));
            } else {
                emit(node, out);
            }
        }
        Node::Repeat {
            node,
            min,
            max,
            greedy,
        } => emit_repeat(node, *min, *max, *greedy, out),
    }
}

fn emit_alt(branches: &[Node], out: &mut Vec<Inst>) {
    // split b1, next; b1; jmp end; next: split b2, ...; ...; end:
    let mut jmp_ends = Vec::new();
    for (i, branch) in branches.iter().enumerate() {
        if i + 1 < branches.len() {
            let split_at = out.len();
            out.push(Inst::Jmp(0)); // placeholder for Split
            emit(branch, out);
            jmp_ends.push(out.len());
            out.push(Inst::Jmp(0)); // placeholder for Jmp to end
            let next = out.len();
            out[split_at] = Inst::Split(split_at + 1, next);
        } else {
            emit(branch, out);
        }
    }
    let end = out.len();
    for j in jmp_ends {
        out[j] = Inst::Jmp(end);
    }
}

fn emit_repeat(node: &Node, min: u32, max: Option<u32>, greedy: bool, out: &mut Vec<Inst>) {
    // Mandatory copies.
    for _ in 0..min {
        emit(node, out);
    }
    match max {
        None => {
            // node* : L1: split L2, L3 ; L2: node ; jmp L1 ; L3:
            let l1 = out.len();
            out.push(Inst::Jmp(0)); // placeholder
            emit(node, out);
            out.push(Inst::Jmp(l1));
            let l3 = out.len();
            out[l1] = if greedy {
                Inst::Split(l1 + 1, l3)
            } else {
                Inst::Split(l3, l1 + 1)
            };
        }
        Some(max) => {
            // (max - min) optional copies: split L1, END ; L1: node ; ...
            let mut splits = Vec::new();
            for _ in min..max {
                let s = out.len();
                out.push(Inst::Jmp(0)); // placeholder
                splits.push(s);
                emit(node, out);
            }
            let end = out.len();
            for s in splits {
                out[s] = if greedy {
                    Inst::Split(s + 1, end)
                } else {
                    Inst::Split(end, s + 1)
                };
            }
        }
    }
}

/// Budget on backtracking steps; beyond this the engine gives up and
/// reports no match rather than hanging.
const STEP_BUDGET: usize = 1_000_000;

/// Attempts to match `prog` against `input` starting exactly at char index
/// `start`. On success returns the capture slot array (char indices).
pub(crate) fn exec_at(prog: &Program, input: &[char], start: usize) -> Option<Vec<Option<usize>>> {
    let nslots = (prog.group_count as usize + 1) * 2;
    let mut saves: Vec<Option<usize>> = vec![None; nslots];
    // Backtrack stack: (pc, string position, saves snapshot).
    let mut stack: Vec<(usize, usize, Vec<Option<usize>>)> = Vec::new();
    let mut pc = 0usize;
    let mut sp = start;
    let mut steps = 0usize;

    loop {
        steps += 1;
        if steps > STEP_BUDGET {
            return None;
        }
        let inst = &prog.insts[pc];
        let ok = match inst {
            Inst::Char(c) => {
                if input.get(sp) == Some(c) {
                    sp += 1;
                    pc += 1;
                    true
                } else {
                    false
                }
            }
            Inst::Any => {
                if sp < input.len() && input[sp] != '\n' {
                    sp += 1;
                    pc += 1;
                    true
                } else {
                    false
                }
            }
            Inst::Class(class) => {
                if sp < input.len() && class.matches(input[sp]) {
                    sp += 1;
                    pc += 1;
                    true
                } else {
                    false
                }
            }
            Inst::Start => {
                if sp == 0 {
                    pc += 1;
                    true
                } else {
                    false
                }
            }
            Inst::End => {
                if sp == input.len() {
                    pc += 1;
                    true
                } else {
                    false
                }
            }
            Inst::Split(a, b) => {
                stack.push((*b, sp, saves.clone()));
                pc = *a;
                true
            }
            Inst::Jmp(t) => {
                pc = *t;
                true
            }
            Inst::Save(slot) => {
                saves[*slot] = Some(sp);
                pc += 1;
                true
            }
            Inst::Match => return Some(saves),
        };
        if !ok {
            match stack.pop() {
                Some((bpc, bsp, bsaves)) => {
                    pc = bpc;
                    sp = bsp;
                    saves = bsaves;
                }
                None => return None,
            }
        }
    }
}

/// Unanchored search: tries every start position left to right.
pub(crate) fn search(prog: &Program, input: &[char], from: usize) -> Option<Vec<Option<usize>>> {
    for start in from..=input.len() {
        if let Some(saves) = exec_at(prog, input, start) {
            return Some(saves);
        }
    }
    None
}
