//! Regex pattern parser producing the AST consumed by the compiler.
//!
//! Supported syntax: literals, `.`, bracket classes (`[a-z]`, `[^...]`,
//! with `\d \w \s` usable inside), escapes, anchors `^ $`, grouping
//! `( )` / non-capturing `(?: )`, alternation `|`, and quantifiers
//! `* + ? {m} {m,} {m,n}` with optional lazy suffix `?`.

use std::fmt;

use crate::class::CharClass;

/// Error produced when a pattern fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegexError {
    position: usize,
    message: String,
}

impl ParseRegexError {
    fn new(position: usize, message: impl Into<String>) -> ParseRegexError {
        ParseRegexError {
            position,
            message: message.into(),
        }
    }

    /// Character offset in the pattern where parsing failed.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseRegexError {}

/// Regex AST node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Matches the empty string.
    Empty,
    /// A literal character.
    Char(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A character class.
    Class(CharClass),
    /// `^` — start of input.
    Start,
    /// `$` — end of input.
    End,
    /// Sequence of nodes.
    Concat(Vec<Node>),
    /// Alternation between branches.
    Alt(Vec<Node>),
    /// A quantified node.
    Repeat {
        /// The repeated sub-expression.
        node: Box<Node>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions (`None` = unbounded).
        max: Option<u32>,
        /// Greedy (`true`) or lazy (`false`).
        greedy: bool,
    },
    /// A group; `index` is `Some(n)` for capturing groups (1-based).
    Group {
        /// Capture index, if capturing.
        index: Option<u32>,
        /// The grouped sub-expression.
        node: Box<Node>,
    },
}

pub(crate) struct ParsedPattern {
    pub node: Node,
    /// Number of capturing groups (not counting group 0 / whole match).
    pub group_count: u32,
}

pub(crate) fn parse(pattern: &str) -> Result<ParsedPattern, ParseRegexError> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser {
        chars,
        pos: 0,
        next_group: 1,
    };
    let node = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unbalanced `)`"));
    }
    Ok(ParsedPattern {
        node,
        group_count: p.next_group - 1,
    })
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    next_group: u32,
}

/// Cap on `{m,n}` bounds so compiled programs stay small.
const MAX_REPEAT: u32 = 1000;

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseRegexError {
        ParseRegexError::new(self.pos, message)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn alternation(&mut self) -> Result<Node, ParseRegexError> {
        let mut branches = vec![self.concat()?];
        while self.peek() == Some('|') {
            self.pos += 1;
            branches.push(self.concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Node::Alt(branches))
        }
    }

    fn concat(&mut self) -> Result<Node, ParseRegexError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.quantified()?);
        }
        match parts.len() {
            0 => Ok(Node::Empty),
            1 => Ok(parts.pop().expect("one part")),
            _ => Ok(Node::Concat(parts)),
        }
    }

    fn quantified(&mut self) -> Result<Node, ParseRegexError> {
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('{') => {
                // `{` only begins a quantifier if it parses as one;
                // otherwise it is a literal.
                if let Some(q) = self.try_brace_quantifier()? {
                    q
                } else {
                    return Ok(atom);
                }
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Node::Start | Node::End) {
            return Err(self.err("cannot quantify an anchor"));
        }
        let greedy = if self.peek() == Some('?') {
            self.pos += 1;
            false
        } else {
            true
        };
        Ok(Node::Repeat {
            node: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    fn try_brace_quantifier(&mut self) -> Result<Option<(u32, Option<u32>)>, ParseRegexError> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some('{'));
        self.pos += 1;
        let min = self.number();
        let result = match (min, self.peek()) {
            (Some(m), Some('}')) => {
                self.pos += 1;
                Some((m, Some(m)))
            }
            (Some(m), Some(',')) => {
                self.pos += 1;
                match (self.number(), self.peek()) {
                    (Some(n), Some('}')) => {
                        self.pos += 1;
                        if n < m {
                            return Err(self.err("quantifier range is reversed"));
                        }
                        Some((m, Some(n)))
                    }
                    (None, Some('}')) => {
                        self.pos += 1;
                        Some((m, None))
                    }
                    _ => None,
                }
            }
            _ => None,
        };
        match result {
            Some((m, n)) => {
                if m > MAX_REPEAT || n.is_some_and(|n| n > MAX_REPEAT) {
                    return Err(self.err(format!("repeat bound exceeds {MAX_REPEAT}")));
                }
                Ok(Some((m, n)))
            }
            None => {
                // Not a quantifier: rewind and treat `{` as a literal.
                self.pos = start;
                Ok(None)
            }
        }
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.pos;
        while matches!(self.peek(), Some('0'..='9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        s.parse().ok()
    }

    fn atom(&mut self) -> Result<Node, ParseRegexError> {
        match self.bump() {
            Some('(') => {
                let index = if self.peek() == Some('?') {
                    // Only `(?:` is supported.
                    self.pos += 1;
                    if self.bump() != Some(':') {
                        return Err(self.err("only (?: non-capturing groups are supported"));
                    }
                    None
                } else {
                    let idx = self.next_group;
                    self.next_group += 1;
                    Some(idx)
                };
                let inner = self.alternation()?;
                if self.bump() != Some(')') {
                    return Err(self.err("missing `)`"));
                }
                Ok(Node::Group {
                    index,
                    node: Box::new(inner),
                })
            }
            Some('[') => self.bracket_class().map(Node::Class),
            Some('.') => Ok(Node::AnyChar),
            Some('^') => Ok(Node::Start),
            Some('$') => Ok(Node::End),
            Some('\\') => self.escape(false),
            Some(c @ ('*' | '+' | '?')) => Err(self.err(format!("dangling quantifier `{c}`"))),
            Some(')') => Err(self.err("unmatched `)`")),
            Some(c) => Ok(Node::Char(c)),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    /// Parses an escape. In class context (`in_class`), anchors and class
    /// shorthands behave slightly differently (handled by the caller).
    fn escape(&mut self, in_class: bool) -> Result<Node, ParseRegexError> {
        match self.bump() {
            Some('d') => Ok(Node::Class(CharClass::digit())),
            Some('D') => {
                let mut c = CharClass::digit();
                c.negate();
                Ok(Node::Class(c))
            }
            Some('w') => Ok(Node::Class(CharClass::word())),
            Some('W') => {
                let mut c = CharClass::word();
                c.negate();
                Ok(Node::Class(c))
            }
            Some('s') => Ok(Node::Class(CharClass::space())),
            Some('S') => {
                let mut c = CharClass::space();
                c.negate();
                Ok(Node::Class(c))
            }
            Some('n') => Ok(Node::Char('\n')),
            Some('r') => Ok(Node::Char('\r')),
            Some('t') => Ok(Node::Char('\t')),
            Some('0') => Ok(Node::Char('\0')),
            Some(c) if !c.is_ascii_alphanumeric() => Ok(Node::Char(c)),
            Some(c) => {
                let _ = in_class;
                Err(self.err(format!("unsupported escape `\\{c}`")))
            }
            None => Err(self.err("dangling `\\`")),
        }
    }

    fn bracket_class(&mut self) -> Result<CharClass, ParseRegexError> {
        let mut class = CharClass::new();
        if self.peek() == Some('^') {
            self.pos += 1;
            class.negate();
        }
        // A `]` immediately after `[` or `[^` is a literal.
        if self.peek() == Some(']') {
            self.pos += 1;
            class.push_char(']');
        }
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated character class")),
                Some(']') => return Ok(class),
                Some('\\') => match self.escape(true)? {
                    Node::Char(c) => self.maybe_range(&mut class, c)?,
                    Node::Class(sub) => {
                        if sub.is_negated() {
                            return Err(self.err(
                                "negated shorthand (\\D, \\W, \\S) not supported inside [...]",
                            ));
                        }
                        class.extend_ranges(&sub);
                    }
                    _ => return Err(self.err("invalid escape in character class")),
                },
                Some(c) => self.maybe_range(&mut class, c)?,
            }
        }
    }

    fn maybe_range(&mut self, class: &mut CharClass, lo: char) -> Result<(), ParseRegexError> {
        if self.peek() == Some('-') && self.chars.get(self.pos + 1).is_some_and(|&c| c != ']') {
            self.pos += 1; // consume '-'
            let hi = match self.bump() {
                Some('\\') => match self.escape(true)? {
                    Node::Char(c) => c,
                    _ => return Err(self.err("invalid range endpoint")),
                },
                Some(c) => c,
                None => return Err(self.err("unterminated character class")),
            };
            if hi < lo {
                return Err(self.err(format!("invalid range {lo}-{hi}")));
            }
            class.push_range(lo, hi);
        } else {
            class.push_char(lo);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals_and_groups() {
        let p = parse("ab(c|d)e").unwrap();
        assert_eq!(p.group_count, 1);
        match p.node {
            Node::Concat(parts) => assert_eq!(parts.len(), 4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn counts_groups() {
        assert_eq!(parse("(a)(b(c))").unwrap().group_count, 3);
        assert_eq!(parse("(?:a)(b)").unwrap().group_count, 1);
    }

    #[test]
    fn parses_quantifiers() {
        for (pat, min, max, greedy) in [
            ("a*", 0, None, true),
            ("a+", 1, None, true),
            ("a?", 0, Some(1), true),
            ("a*?", 0, None, false),
            ("a{3}", 3, Some(3), true),
            ("a{2,}", 2, None, true),
            ("a{2,5}", 2, Some(5), true),
        ] {
            match parse(pat).unwrap().node {
                Node::Repeat {
                    min: m,
                    max: x,
                    greedy: g,
                    ..
                } => {
                    assert_eq!((m, x, g), (min, max, greedy), "{pat}");
                }
                other => panic!("{pat}: {other:?}"),
            }
        }
    }

    #[test]
    fn literal_brace_when_not_quantifier() {
        // `{x}` is not a quantifier, so it parses as literal characters.
        assert!(parse("a{x}").is_ok());
        assert!(parse("a{,3}").is_ok());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "(", ")", "a)", "[a", "*a", "a{3,1}", "\\", "(?<x>a)", "a{2000}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn class_with_range_and_shorthand() {
        let p = parse(r"[a-f\d_]").unwrap();
        match p.node {
            Node::Class(c) => {
                assert!(c.matches('b'));
                assert!(c.matches('7'));
                assert!(c.matches('_'));
                assert!(!c.matches('g'));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn leading_close_bracket_is_literal() {
        let p = parse(r"[]a]").unwrap();
        match p.node {
            Node::Class(c) => {
                assert!(c.matches(']'));
                assert!(c.matches('a'));
            }
            other => panic!("{other:?}"),
        }
    }
}
