//! Property tests: the engine agrees with a naive reference matcher on a
//! restricted pattern family, and never panics on arbitrary patterns.

use proptest::prelude::*;
use safeweb_regex::Regex;

/// Reference matcher for patterns made of literal chars, `.` and `X*`:
/// returns whether the pattern matches the whole text (anchored).
fn naive_full_match(pat: &[PatItem], text: &[char]) -> bool {
    match pat.split_first() {
        None => text.is_empty(),
        Some((PatItem::Lit(c), rest)) => {
            !text.is_empty() && text[0] == *c && naive_full_match(rest, &text[1..])
        }
        Some((PatItem::Dot, rest)) => !text.is_empty() && naive_full_match(rest, &text[1..]),
        Some((PatItem::Star(c), rest)) => {
            // Try consuming 0..n copies of c.
            let mut i = 0;
            loop {
                if naive_full_match(rest, &text[i..]) {
                    return true;
                }
                if i < text.len() && (*c == '.' || text[i] == *c) {
                    i += 1;
                } else {
                    return false;
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
enum PatItem {
    Lit(char),
    Dot,
    Star(char), // char or '.' meaning any
}

fn render(pat: &[PatItem]) -> String {
    let mut s = String::from("^");
    for item in pat {
        match item {
            PatItem::Lit(c) => s.push(*c),
            PatItem::Dot => s.push('.'),
            PatItem::Star(c) => {
                s.push(*c);
                s.push('*');
            }
        }
    }
    s.push('$');
    s
}

fn arb_item() -> impl Strategy<Value = PatItem> {
    prop_oneof![
        proptest::char::range('a', 'c').prop_map(PatItem::Lit),
        Just(PatItem::Dot),
        proptest::char::range('a', 'c').prop_map(PatItem::Star),
        Just(PatItem::Star('.')),
    ]
}

proptest! {
    /// Agreement with the naive reference on literal/dot/star patterns.
    #[test]
    fn agrees_with_reference(
        pat in proptest::collection::vec(arb_item(), 0..6),
        text in "[abc]{0,8}",
    ) {
        let re = Regex::new(&render(&pat)).unwrap();
        let chars: Vec<char> = text.chars().collect();
        let expected = naive_full_match(&pat, &chars);
        prop_assert_eq!(re.is_match(&text), expected,
            "pattern {} on {:?}", render(&pat), text);
    }

    /// The compiler never panics on arbitrary pattern strings.
    #[test]
    fn compile_total_on_garbage(pat in "\\PC{0,24}") {
        let _ = Regex::new(&pat);
    }

    /// Matching never panics on arbitrary subjects.
    #[test]
    fn match_total(pat in "[abc.()|*+?\\[\\]{}0-9,^$]{0,12}", text in "\\PC{0,16}") {
        if let Ok(re) = Regex::new(&pat) {
            let _ = re.is_match(&text);
            let _ = re.captures(&text);
        }
    }

    /// find()'s span actually bounds a matching substring: re-running the
    /// anchored pattern on the extracted slice must succeed.
    #[test]
    fn find_span_is_self_consistent(text in "[ab]{0,10}") {
        let re = Regex::new("a[ab]*b").unwrap();
        if let Some(m) = re.find(&text) {
            let sub = &text[m.start()..m.end()];
            let anchored = Regex::new("^a[ab]*b$").unwrap();
            prop_assert!(anchored.is_match(sub));
        }
    }

    /// replace_all with the identity replacement returns the input.
    #[test]
    fn replace_identity(text in "[abc ]{0,16}") {
        let re = Regex::new("[abc]").unwrap();
        prop_assert_eq!(re.replace_all(&text, "$0"), text);
    }

    /// split then join with a fixed separator inverts (for non-empty separators).
    #[test]
    fn split_rejoin(parts in proptest::collection::vec("[ab]{0,4}", 0..5)) {
        let text = parts.join(",");
        let re = Regex::new(",").unwrap();
        let split = re.split(&text);
        prop_assert_eq!(split.join(","), text);
    }
}
