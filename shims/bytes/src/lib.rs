//! Minimal `bytes`-compatible shim.
//!
//! Provides [`BytesMut`] (a growable byte buffer with amortised O(1)
//! front-consumption) and the [`Buf`] trait subset the STOMP codec
//! uses. Unlike the real crate there is no zero-copy splitting; `advance`
//! moves a read cursor and compacts lazily.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;

/// Byte cursors that can discard consumed prefixes.
pub trait Buf {
    /// Discards the next `n` bytes.
    fn advance(&mut self, n: usize);
}

/// A growable byte buffer readable as `&[u8]`.
#[derive(Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Bytes before this offset are consumed; compacted once large.
    head: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Appends `bytes` to the end of the buffer.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Number of unconsumed bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn compact_if_large(&mut self) {
        // Compact once the dead prefix dominates, keeping amortised O(1).
        if self.head > 4096 && self.head * 2 > self.data.len() {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Buf for BytesMut {
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.head += n;
        self.compact_if_large();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_and_advance() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello");
        assert_eq!(&b[..], b"hello");
        b.advance(2);
        assert_eq!(&b[..], b"llo");
        assert_eq!(b.len(), 3);
        b.extend_from_slice(b"!");
        assert_eq!(&b[..], b"llo!");
        assert_eq!(b.first(), Some(&b'l'));
    }

    #[test]
    fn compaction_preserves_content() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&vec![7u8; 10_000]);
        b.advance(6_000);
        b.extend_from_slice(b"tail");
        assert_eq!(b.len(), 4_004);
        assert_eq!(&b[4_000..], b"tail");
    }
}
