//! Minimal `parking_lot`-compatible shim over `std::sync`.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the `parking_lot` API SafeWeb uses: `Mutex`
//! and `RwLock` with infallible, poison-transparent guards. Lock
//! poisoning is deliberately ignored (`parking_lot` has no poisoning);
//! a panic while holding a guard does not wedge later acquisitions.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
