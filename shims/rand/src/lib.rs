//! Minimal `rand`-compatible shim.
//!
//! Provides `StdRng` (a seeded SplitMix64/xorshift* generator), the
//! `SeedableRng` and `Rng` traits, and the handful of methods the
//! synthetic-registry generator uses (`gen_range`, `gen_bool`). Not
//! cryptographically secure — SafeWeb only uses it for reproducible
//! synthetic data.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over a raw generator.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 <= p
    }
}

/// Integer types `gen_range` can produce.
pub trait SampleRange: Copy {
    /// Maps raw bits into `range` uniformly (modulo bias is acceptable
    /// for synthetic-data generation).
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(bits: u64, range: Range<$t>) -> $t {
                let span = (range.end - range.start) as u128;
                assert!(span > 0, "gen_range on empty range");
                range.start + (bits as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// A process-entropy random value (used for non-reproducible seeds such
/// as per-process id prefixes). Entropy comes from the OS-seeded
/// `RandomState` hasher plus a monotonic counter.
pub fn random<T: Random>() -> T {
    T::random()
}

/// Types producible by [`random`].
pub trait Random {
    /// One sample from process entropy.
    fn random() -> Self;
}

impl Random for u64 {
    fn random() -> u64 {
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let mut hasher = RandomState::new().build_hasher();
        hasher.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
        hasher.finish()
    }
}

/// Generators live here in the real crate; only `StdRng` is provided.
pub mod rngs {
    /// A small, fast, seedable PRNG (xorshift64*, SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 scramble so small seeds still start well mixed.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(1930..1990);
            assert!((1930..1990).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0) || !rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
