//! The `proptest!` runner macro and its assertion companions.

/// Declares property tests. Each function's arguments are drawn from
/// the strategies after `in`, and the body runs for
/// [`CASES`](crate::test_runner::CASES) generated cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        $vis fn $name() {
            $crate::test_runner::run(stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                $body
                Ok(())
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

/// Asserts inside a property body; failure reports the generating case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current case (does not count towards the case budget)
/// when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
