//! Minimal `proptest`-compatible shim.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the `proptest` subset SafeWeb's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_filter` /
//!   `prop_flat_map` / `prop_recursive` / `boxed`,
//! * value sources: [`Just`](strategy::Just), integer ranges, tuples,
//!   [`any`](strategy::any),
//!   string-pattern strategies (`"[a-z]{1,8}"`, `"\\PC{0,16}"`),
//!   [`collection::vec`], [`collection::btree_map`], [`char::range`],
//! * the [`proptest!`] runner macro with `prop_assert!`,
//!   `prop_assert_eq!`, `prop_assert_ne!` and `prop_assume!`.
//!
//! Cases are generated from a deterministic per-test seed so failures
//! reproduce across runs. Shrinking is not implemented: a failing case
//! reports its case number and seed instead of a minimal example.

#![forbid(unsafe_code)]

pub mod collection;
mod macros;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

/// Char strategies (`proptest::char::range`).
pub mod char {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform chars in `[start, end]` (both inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        start: u32,
        end: u32,
    }

    /// Strategy over the inclusive char range `start..=end`.
    pub fn range(start: ::core::primitive::char, end: ::core::primitive::char) -> CharRange {
        assert!(start <= end, "char::range start > end");
        CharRange {
            start: start as u32,
            end: end as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = ::core::primitive::char;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Resample on the surrogate gap rather than skew around it.
            loop {
                let v = rng.usize_in(self.start as usize, self.end as usize + 1) as u32;
                if let Some(c) = ::core::char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
