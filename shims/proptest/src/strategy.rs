//! The [`Strategy`] trait, combinators, and primitive value sources.

use std::cell::OnceCell;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// Unlike the real crate there is no shrinking: a strategy is just a
/// deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `f` (regenerating locally, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Builds recursive structures: `self` generates leaves, `branch`
    /// combines recursive occurrences. `depth` bounds recursion per
    /// generation path; `_desired_size` and `_expected_branch_size` are
    /// accepted for API compatibility and unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let rec = Rc::new(Recursive {
            leaf: self.boxed(),
            branch: OnceCell::new(),
        });
        let inner = BoxedStrategy(Rc::new({
            let rec = Rc::clone(&rec);
            move |rng: &mut TestRng| rec.generate(rng)
        }));
        let branch = branch(inner).boxed();
        rec.branch
            .set(branch)
            .unwrap_or_else(|_| unreachable!("branch initialised once"));
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let saved = rng.depth;
            rng.depth = depth;
            let value = rec.generate(rng);
            rng.depth = saved;
            value
        }))
    }
}

struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    branch: OnceCell<BoxedStrategy<T>>,
}

impl<T> Recursive<T> {
    fn generate(&self, rng: &mut TestRng) -> T {
        let branch = self.branch.get().expect("branch initialised");
        if rng.depth == 0 || rng.gen_bool(0.4) {
            return self.leaf.generate(rng);
        }
        rng.depth -= 1;
        let value = branch.generate(rng);
        rng.depth += 1;
        value
    }
}

/// Cloneable type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed strategies (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}

/// Types with a canonical strategy, used through [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any [`Arbitrary`] type: `any::<i64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias towards boundary values for better edge coverage.
                if rng.gen_bool(0.2) {
                    const EDGES: [$t; 5] = [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX / 2];
                    EDGES[rng.usize_in(0, EDGES.len())]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        if rng.gen_bool(0.2) {
            const EDGES: [f64; 8] = [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NAN,
                f64::MIN_POSITIVE,
            ];
            EDGES[rng.usize_in(0, EDGES.len())]
        } else if rng.gen_bool(0.5) {
            // Representable-in-text decimals.
            (rng.next_u64() as i64 % 1_000_000) as f64 / 100.0
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::pattern::printable_char(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3i32..17).generate(&mut r);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let mut r = rng();
        let s = (0u8..10)
            .prop_map(|v| v * 2)
            .prop_filter("even half", |v| *v < 10);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v < 10);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut r = rng();
        let s = Union::new(vec![Just(1).boxed(), Just(2).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(())
            .prop_map(|()| Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&s.generate(&mut r)) <= 4);
        }
    }
}
