//! Deterministic case generation and the test-loop driver.

use std::fmt;

/// Cases generated per property (no shrinking, so more cases than the
/// real crate's default effort-equivalent).
pub const CASES: u32 = 128;

/// Maximum `prop_assume!` rejections tolerated across one property.
const MAX_REJECTS: u32 = 4096;

/// Deterministic generator handed to strategies.
///
/// Carries the remaining recursion budget for
/// [`Strategy::prop_recursive`](crate::strategy::Strategy::prop_recursive)
/// so recursive structures stay bounded per generation path.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    /// Remaining recursion depth for recursive strategies.
    pub(crate) depth: u32,
}

impl TestRng {
    /// Seeds a generator for one test case.
    pub fn from_seed(seed: u64) -> TestRng {
        // SplitMix64 scramble so consecutive case seeds diverge.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
            depth: 0,
        }
    }

    /// Next 64 random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 <= p
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case does not count.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` for [`CASES`] generated cases; panics on the first
/// failure with enough context to reproduce it.
pub fn run(name: &str, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let base = fnv1a(name);
    let mut rejects = 0u32;
    let mut case = 0u32;
    let mut attempt = 0u64;
    while case < CASES {
        let seed = base ^ attempt.wrapping_mul(0xa076_1d64_78bd_642f);
        attempt += 1;
        let mut rng = TestRng::from_seed(seed);
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects < MAX_REJECTS,
                    "proptest {name}: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest {name}: case {case} (seed {seed:#x}) {message}")
            }
        }
    }
}
