//! Collection strategies (`proptest::collection::{vec, btree_map}`).

use std::collections::BTreeMap;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Vectors of `element` with a length drawn from `size` (half-open, as
/// with the real crate's `Range` size specification).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.start, self.size.end.max(self.size.start + 1));
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Maps of `key → value` with up to `size` entries (duplicate generated
/// keys collapse, as with the real crate).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = rng.usize_in(self.size.start, self.size.end.max(self.size.start + 1));
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn vec_length_in_range() {
        let mut rng = TestRng::from_seed(3);
        let s = vec(Just(0u8), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_map_collapses_duplicates() {
        let mut rng = TestRng::from_seed(4);
        let s = btree_map(Just("k"), Just(1), 3..4);
        let m = s.generate(&mut rng);
        assert_eq!(m.len(), 1);
    }
}
