//! String generation from the tiny regex-pattern dialect the tests use:
//! a sequence of items (`[class]`, `\PC`, escaped or literal chars),
//! each with an optional `{m,n}` / `{n}` repeat, e.g. `"[a-z_]{1,8}"`
//! or `"\\PC{0,16}"` (any printable char).

use crate::test_runner::TestRng;

/// Non-ASCII printable chars mixed into `\PC` output.
const UNICODE_POOL: &[char] = &[
    'é', 'ß', 'ñ', 'λ', 'Ω', '†', '€', '中', '日', '語', 'क', '🦀', '✓', '—',
];

/// A printable (non-control) char: mostly ASCII, some multibyte.
pub fn printable_char(rng: &mut TestRng) -> char {
    if rng.gen_bool(0.12) {
        UNICODE_POOL[rng.usize_in(0, UNICODE_POOL.len())]
    } else {
        char::from_u32(rng.usize_in(0x20, 0x7f) as u32).expect("printable ascii")
    }
}

enum Item {
    /// Inclusive char ranges from a `[...]` class (single chars are
    /// degenerate ranges).
    Class(Vec<(char, char)>),
    /// `\PC`: any printable char.
    Printable,
    /// A literal char.
    Literal(char),
}

struct Piece {
    item: Item,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let item =
            match c {
                '[' => {
                    let mut ranges = Vec::new();
                    let mut pending: Vec<char> = Vec::new();
                    loop {
                        let c = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                        match c {
                            ']' => break,
                            '\\' => pending.push(chars.next().unwrap_or_else(|| {
                                panic!("dangling escape in pattern {pattern:?}")
                            })),
                            '-' if !pending.is_empty()
                                && chars.peek().is_some_and(|&next| next != ']') =>
                            {
                                let lo = pending.pop().expect("range start");
                                let hi = chars.next().expect("range end");
                                let hi = if hi == '\\' {
                                    chars.next().expect("escaped range end")
                                } else {
                                    hi
                                };
                                ranges.push((lo, hi));
                            }
                            other => pending.push(other),
                        }
                    }
                    ranges.extend(pending.into_iter().map(|c| (c, c)));
                    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                    Item::Class(ranges)
                }
                '\\' => match chars.next() {
                    Some('P') => {
                        let category = chars.next();
                        assert_eq!(
                            category,
                            Some('C'),
                            "only \\PC is supported, got \\P{category:?} in {pattern:?}"
                        );
                        Item::Printable
                    }
                    Some(escaped) => Item::Literal(escaped),
                    None => panic!("dangling escape in pattern {pattern:?}"),
                },
                literal => Item::Literal(literal),
            };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut bounds = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                bounds.push(c);
            }
            match bounds.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repeat lower bound"),
                    hi.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = bounds.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repeat bounds in pattern {pattern:?}");
        pieces.push(Piece { item, min, max });
    }
    pieces
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = rng.usize_in(piece.min, piece.max + 1);
        for _ in 0..count {
            match &piece.item {
                Item::Literal(c) => out.push(*c),
                Item::Printable => out.push(printable_char(rng)),
                Item::Class(ranges) => {
                    let (lo, hi) = ranges[rng.usize_in(0, ranges.len())];
                    let v = rng.usize_in(lo as usize, hi as usize + 1) as u32;
                    out.push(char::from_u32(v).unwrap_or(lo));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(7)
    }

    #[test]
    fn class_with_ranges_and_literals() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-zA-Z-]{1,10}", &mut r);
            assert!((1..=10).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_alphabetic() || c == '-'));
        }
    }

    #[test]
    fn printable_escape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("\\PC{0,8}", &mut r);
            assert!(s.chars().count() <= 8);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn escaped_metachars_in_class() {
        let mut r = rng();
        let allowed: Vec<char> = "abc.()|*+?[]{}0123456789,^$".chars().collect();
        for _ in 0..200 {
            let s = generate("[abc.()|*+?\\[\\]{}0-9,^$]{0,12}", &mut r);
            assert!(s.chars().all(|c| allowed.contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[ -~]{0,12}", &mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn exact_repeat_count() {
        let mut r = rng();
        let s = generate("[ab]{4}", &mut r);
        assert_eq!(s.chars().count(), 4);
    }
}
