//! Minimal `criterion`-compatible bench harness.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the API subset SafeWeb's benches use — groups, throughput
//! annotation, `iter` / `iter_custom` / `iter_batched` — backed by a
//! simple median-of-samples timer instead of criterion's statistical
//! machinery. Results print as `group/name  median ...` lines; relative
//! comparisons between benches remain meaningful, confidence intervals
//! are out of scope.
//!
//! Two environment variables integrate the shim with CI:
//!
//! * `SAFEWEB_BENCH_SMOKE=1` caps every group at 3 samples and 300 ms of
//!   measurement (whatever the bench asked for), so a smoke run finishes
//!   in seconds instead of full criterion-style iteration counts.
//! * `SAFEWEB_BENCH_JSON=path` writes every `group/name → median µs`
//!   pair to `path` as JSON when the bench binary exits
//!   ([`criterion_main!`] calls [`write_json_results`]), for artifact
//!   upload and regression gating.

#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Whether `SAFEWEB_BENCH_SMOKE` asks for a capped smoke run.
pub fn smoke_run() -> bool {
    std::env::var("SAFEWEB_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Every `(group/name, median seconds-per-iter)` measured so far, in
/// completion order.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

fn record_result(name: String, median: f64) {
    RESULTS.lock().unwrap().push((name, median));
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the collected medians (in microseconds per iteration) to the
/// file named by `SAFEWEB_BENCH_JSON`, if set. Called automatically by
/// the `main` that [`criterion_main!`] generates; a no-op otherwise.
pub fn write_json_results() {
    let Ok(path) = std::env::var("SAFEWEB_BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from(
        "{\n  \"schema\": \"safeweb-bench/1\",\n  \"unit\": \"us_per_iter\",\n  \"benches\": {\n",
    );
    for (i, (name, median)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{}\": {:.3}{comma}\n",
            json_escape(name),
            median * 1e6
        ));
    }
    out.push_str("  }\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write bench JSON to {path}: {e}");
    } else {
        eprintln!("bench medians written to {path}");
    }
}

/// How `iter_batched` amortises setup; the shim times routine-only for
/// every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh batch per iteration.
    PerIteration,
}

/// Work-per-iteration annotation used to derive rate units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Entry point handle passed to bench functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Benches a function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("default");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A group of benches sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per bench (the shim honours it directly).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Upper bound on total measurement time per bench.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up period before sampling (accepted, unused: the shim's
    /// calibration probe doubles as warm-up).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates work-per-iteration so rates are printed.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named bench.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        // A smoke run (CI) caps sampling however the bench configured it.
        let (sample_size, measurement_time) = if smoke_run() {
            (
                self.sample_size.min(3),
                self.measurement_time.min(Duration::from_millis(300)),
            )
        } else {
            (self.sample_size, self.measurement_time)
        };
        let mut samples = Vec::with_capacity(sample_size);
        let deadline = Instant::now() + measurement_time;
        for i in 0..sample_size {
            let mut bencher = Bencher {
                sample: Duration::ZERO,
                iters: 0,
            };
            f(&mut bencher);
            if bencher.iters > 0 {
                samples.push(bencher.sample.as_secs_f64() / bencher.iters as f64);
            }
            if i >= 2 && Instant::now() >= deadline {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        record_result(format!("{}/{name}", self.name), median);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / median)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  ({:.0} B/s)", n as f64 / median)
            }
            _ => String::new(),
        };
        eprintln!(
            "  {}/{name:<40} median {:>12.3} us/iter{rate}  [{} samples]",
            self.name,
            median * 1e6,
            samples.len(),
        );
        self
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timer handle passed to each bench closure.
#[derive(Debug)]
pub struct Bencher {
    sample: Duration,
    iters: u64,
}

impl Bencher {
    /// Auto-calibrated iteration count for sub-millisecond routines.
    fn calibrated_iters(one: Duration) -> u64 {
        // Aim for ~5ms of work per sample.
        let target = Duration::from_millis(5);
        if one.is_zero() {
            10_000
        } else {
            ((target.as_nanos() / one.as_nanos().max(1)) as u64).clamp(1, 1_000_000)
        }
    }

    /// Times `routine`, running it enough times for a stable sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let probe = Instant::now();
        black_box(routine());
        let iters = Self::calibrated_iters(probe.elapsed());
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.sample += start.elapsed();
        self.iters += iters;
    }

    /// Times exactly what `routine` reports for a requested iteration
    /// count (the closure does its own timing).
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let iters = 1;
        self.sample += routine(iters);
        self.iters += iters;
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let probe_input = setup();
        let probe = Instant::now();
        black_box(routine(probe_input));
        let iters = Self::calibrated_iters(probe.elapsed()).min(10_000);
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.sample += start.elapsed();
        self.iters += iters;
    }
}

/// Declares a bench group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_results();
        }
    };
}
