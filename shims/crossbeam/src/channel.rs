//! MPMC channels with select support, mirroring `crossbeam_channel`.
//!
//! Semantics notes relative to the real crate:
//!
//! * `bounded(0)` is treated as capacity 1. SafeWeb only uses
//!   zero-capacity channels as drop-signalled stop channels (nothing is
//!   ever sent on them), so rendezvous semantics are not required.
//! * [`Select`] supports only receive operations, which is all SafeWeb
//!   registers. A selected operation is resolved against the receiver by
//!   the caller, exactly like the real API.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone; the
/// unsent value is returned inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders have disconnected.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// The channel is empty and all senders have disconnected.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

/// Wakes one parked [`Select`] call.
#[derive(Default)]
struct Waker {
    fired: Mutex<bool>,
    condvar: Condvar,
}

impl Waker {
    fn wake(&self) {
        *self.fired.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.condvar.notify_all();
    }

    fn park(&self, timeout: Duration) {
        let mut fired = self.fired.lock().unwrap_or_else(|e| e.into_inner());
        while !*fired {
            let (guard, wait) = self
                .condvar
                .wait_timeout(fired, timeout)
                .unwrap_or_else(|e| e.into_inner());
            fired = guard;
            if wait.timed_out() {
                break;
            }
        }
    }
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// Select calls parked on this channel.
    wakers: Vec<Arc<Waker>>,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Capacity for bounded channels (`None` = unbounded).
    cap: Option<usize>,
    recv_ready: Condvar,
    send_ready: Condvar,
}

impl<T> Shared<T> {
    fn wake_selects(inner: &mut Inner<T>) {
        for w in inner.wakers.drain(..) {
            w.wake();
        }
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded MPMC channel (capacity 0 behaves as capacity 1;
/// see module docs).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            wakers: Vec::new(),
        }),
        cap,
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Creates a receiver that gets the current [`Instant`] roughly every
/// `interval`. Ticks are coalesced: if the receiver lags, at most one
/// tick is buffered. The timer thread exits when the receiver is
/// dropped.
pub fn tick(interval: Duration) -> Receiver<Instant> {
    let (tx, rx) = bounded::<Instant>(1);
    std::thread::Builder::new()
        .name("shim-channel-tick".to_string())
        .spawn(move || loop {
            std::thread::sleep(interval);
            let mut inner = tx.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.receivers == 0 {
                return;
            }
            if inner.queue.is_empty() {
                inner.queue.push_back(Instant::now());
                tx.shared.recv_ready.notify_one();
                Shared::wake_selects(&mut inner);
            }
        })
        .expect("spawn tick thread");
    rx
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cap) = self.shared.cap {
            while inner.queue.len() >= cap && inner.receivers > 0 {
                inner = self
                    .shared
                    .send_ready
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        self.shared.recv_ready.notify_one();
        Shared::wake_selects(&mut inner);
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders += 1;
        drop(inner);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders -= 1;
        if inner.senders == 0 {
            // Receivers blocked in recv must observe the disconnect.
            self.shared.recv_ready.notify_all();
            Shared::wake_selects(&mut inner);
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one is available.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.shared.send_ready.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .recv_ready
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receives a message, giving up after `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on deadline,
    /// [`RecvTimeoutError::Disconnected`] when empty with no senders.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.shared.send_ready.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .recv_ready
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when no message is queued,
    /// [`TryRecvError::Disconnected`] when additionally no sender remains.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.queue.pop_front() {
            Some(v) => {
                self.shared.send_ready.notify_one();
                Ok(v)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator over received messages; ends on disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers += 1;
        drop(inner);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers -= 1;
        if inner.receivers == 0 {
            // Senders blocked on a full bounded channel must observe it.
            self.shared.send_ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Blocking message iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// One registered receive operation, erased over the message type.
trait SelectHandle {
    /// Whether a receive would complete immediately (message queued or
    /// channel disconnected).
    fn is_ready(&self) -> bool;

    /// Parks `waker` to be fired on the next state change.
    fn register(&self, waker: &Arc<Waker>);

    /// Removes a previously registered waker.
    fn unregister(&self, waker: &Arc<Waker>);
}

impl<T> SelectHandle for Receiver<T> {
    fn is_ready(&self) -> bool {
        let inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        !inner.queue.is_empty() || inner.senders == 0
    }

    fn register(&self, waker: &Arc<Waker>) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.wakers.push(Arc::clone(waker));
    }

    fn unregister(&self, waker: &Arc<Waker>) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.wakers.retain(|w| !Arc::ptr_eq(w, waker));
    }
}

/// A dynamic select over receive operations, mirroring
/// `crossbeam_channel::Select` (receive-only: that is all SafeWeb
/// registers). Build it once, then call [`Select::select`] repeatedly.
pub struct Select<'a> {
    handles: Vec<&'a dyn SelectHandle>,
    /// Rotates the readiness scan start so one busy channel cannot
    /// starve the others.
    next_start: usize,
}

impl<'a> Select<'a> {
    /// Creates an empty select set.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Select<'a> {
        Select {
            handles: Vec::new(),
            next_start: 0,
        }
    }

    /// Registers a receive operation, returning its stable index.
    pub fn recv<T>(&mut self, receiver: &'a Receiver<T>) -> usize {
        self.handles.push(receiver);
        self.handles.len() - 1
    }

    /// Blocks until one registered operation is ready and returns it.
    pub fn select(&mut self) -> SelectedOperation<'_> {
        assert!(!self.handles.is_empty(), "select with no operations");
        loop {
            if let Some(index) = self.poll() {
                return SelectedOperation {
                    index,
                    _marker: std::marker::PhantomData,
                };
            }
            let waker = Arc::new(Waker::default());
            for h in &self.handles {
                h.register(&waker);
            }
            // Re-check after registration so a send that raced with the
            // scan is not missed; the timeout bounds any residual race.
            if self.poll().is_none() {
                waker.park(Duration::from_millis(50));
            }
            for h in &self.handles {
                h.unregister(&waker);
            }
        }
    }

    fn poll(&mut self) -> Option<usize> {
        let n = self.handles.len();
        let start = self.next_start % n;
        for off in 0..n {
            let i = (start + off) % n;
            if self.handles[i].is_ready() {
                self.next_start = i + 1;
                return Some(i);
            }
        }
        None
    }
}

impl fmt::Debug for Select<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Select {{ operations: {} }}", self.handles.len())
    }
}

/// A ready operation returned by [`Select::select`].
#[derive(Debug)]
pub struct SelectedOperation<'a> {
    index: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl SelectedOperation<'_> {
    /// The index the operation was registered under.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Completes the operation against its receiver.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] if the channel is disconnected and drained.
    pub fn recv<T>(self, receiver: &Receiver<T>) -> Result<T, RecvError> {
        match receiver.try_recv() {
            Ok(v) => Ok(v),
            Err(TryRecvError::Disconnected) => Err(RecvError),
            // Readiness raced with another consumer; fall back to a
            // blocking receive (SafeWeb receivers are single-consumer,
            // so this arm is effectively unreachable).
            Err(TryRecvError::Empty) => receiver.recv(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<i32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn select_wakes_on_send_and_disconnect() {
        let (tx1, rx1) = unbounded::<i32>();
        let (tx2, rx2) = unbounded::<i32>();
        let mut select = Select::new();
        let i1 = select.recv(&rx1);
        let i2 = select.recv(&rx2);

        tx2.send(7).unwrap();
        let op = select.select();
        assert_eq!(op.index(), i2);
        assert_eq!(op.recv(&rx2), Ok(7));

        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx1.send(9).unwrap();
        });
        let op = select.select();
        assert_eq!(op.index(), i1);
        assert_eq!(op.recv(&rx1), Ok(9));

        drop(tx2);
        let op = select.select();
        assert_eq!(op.index(), i2);
        assert_eq!(op.recv(&rx2), Err(RecvError));
    }

    #[test]
    fn select_rotates_between_busy_channels() {
        let (tx1, rx1) = unbounded::<i32>();
        let (tx2, rx2) = unbounded::<i32>();
        tx1.send(1).unwrap();
        tx2.send(2).unwrap();
        let mut select = Select::new();
        select.recv(&rx1);
        select.recv(&rx2);
        let first = select.select().index();
        let second = select.select().index();
        assert_ne!(first, second, "rotation must visit both ready channels");
    }

    #[test]
    fn tick_delivers_and_stops() {
        let rx = tick(Duration::from_millis(5));
        assert!(rx.recv_timeout(Duration::from_millis(500)).is_ok());
        drop(rx);
    }

    #[test]
    fn bounded_blocks_until_consumed() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }
}
