//! Minimal `crossbeam`-compatible shim (channel module only).
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the `crossbeam_channel` subset SafeWeb uses on top of
//! `std::sync`: MPMC channels (`unbounded` / `bounded`), timer channels
//! (`tick`), blocking/timeout/non-blocking receives, and a dynamic
//! [`channel::Select`] over heterogeneous receivers.

#![forbid(unsafe_code)]

pub mod channel;
