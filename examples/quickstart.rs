//! Quickstart: the SafeWeb label model and taint tracking in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks through the core ideas of the paper (§3–§4): labels stick to
//! data, propagate through computation, and are checked at release
//! boundaries — so a buggy handler cannot leak what its caller is not
//! cleared to see.

use safeweb::labels::{Label, LabelSet, Privilege, PrivilegeSet};
use safeweb::taint::{SNum, SStr};

fn main() {
    // 1. Mint labels. A confidentiality label protects one patient's data;
    //    URIs make labels self-describing across the whole system.
    let patient = Label::conf("ecric.org.uk", "patient/33812769");
    let mdt = Label::conf("ecric.org.uk", "mdt/addenbrookes");
    println!("labels:        {patient}");
    println!("               {mdt}");

    // 2. Attach labels to data. From here on, every operation propagates
    //    them — this is the paper's redefined String#+ (§4.4).
    let name = SStr::labelled("A. Patient", [patient.clone()]);
    let site = SStr::labelled("breast", [mdt.clone()]);
    let report = SStr::public("Report for ") + &name + " — site: " + &site.to_uppercase();
    println!("derived value: {:?}", report.as_str());
    println!("carries:       {}", report.labels());

    // 3. Numbers track labels through arithmetic too.
    let a = SNum::labelled(61, [patient.clone()]);
    let age_next_year = a + SNum::public(1);
    println!(
        "labelled math: {} (labels {})",
        age_next_year.value(),
        age_next_year.labels()
    );

    // 4. Release checks at the boundary. The treating MDT holds clearance
    //    for both labels; an unprivileged principal holds none.
    let mut treating_mdt = PrivilegeSet::new();
    treating_mdt.grant(Privilege::clearance(patient.clone()));
    treating_mdt.grant(Privilege::clearance(mdt.clone()));
    match report.check_release(&treating_mdt) {
        Ok(text) => println!("treating MDT sees: {text:?}"),
        Err(e) => unreachable!("clearance held: {e}"),
    }
    match report.check_release(&PrivilegeSet::new()) {
        Ok(_) => unreachable!("must not release"),
        Err(e) => println!("outsider blocked:  {e}"),
    }

    // 5. Label composition (§4.1): confidentiality is sticky (union),
    //    integrity fragile (intersection).
    let endorsed = Label::int("ecric.org.uk", "mdt");
    let a = LabelSet::from_iter([patient.clone(), endorsed.clone()]);
    let b = LabelSet::from_iter([mdt.clone(), endorsed.clone()]);
    let combined = a.combine(&b);
    println!("combine {{patient,int}} with {{mdt,int}} = {combined}");

    let c = LabelSet::from_iter([mdt.clone()]); // no integrity label
    let degraded = combined.combine(&c);
    assert!(!degraded.contains(&endorsed), "integrity is fragile");
    println!("after mixing unendorsed data:          {degraded}");

    // 6. The second net: Ruby-style user taint for XSS/SQLI. User input is
    //    born tainted; sanitisers clear the bit; the frontend refuses to
    //    emit tainted bytes.
    let evil = SStr::from_user("<script>steal()</script>");
    let page = SStr::public("Hello ") + &evil;
    assert!(page.is_user_tainted());
    let safe = page.sanitize_html();
    println!("sanitised:     {:?}", safe.as_str());
    assert!(!safe.is_user_tainted());

    println!("\nquickstart OK — see examples/mdt_portal.rs for the full system.");
}
