//! The complete MDT web portal (§5.1, Figure 4), end to end:
//!
//! ```text
//! registry ──producer──▶ broker ──aggregator──▶ broker ──storage──▶ app DB
//!                                                                    │ push replication (one-way)
//!                          browsers ──HTTP──▶ SafeWeb frontend ◀── DMZ replica (read-only)
//! ```
//!
//! ```sh
//! cargo run --example mdt_portal
//! ```
//!
//! Builds the synthetic registry, runs the three units, waits for the
//! pipeline to settle, serves the portal over real HTTP, and then walks
//! the P1 policy matrix with scripted clients.
//!
//! The portal runs **durable**: the application database and the DMZ
//! replica persist under a data directory (`$TMPDIR/safeweb-mdt-portal`
//! by default, `SAFEWEB_DATA_DIR` overrides), so a re-run — or a crashed
//! portal — reopens with its documents and replication checkpoint intact
//! instead of resyncing from scratch.

use std::time::Duration;

use safeweb::http::{client, Method, Request};
use safeweb_mdt::registry::RegistryConfig;
use safeweb_mdt::{password_for, MdtPortal, PortalConfig, VulnConfig};

fn main() {
    // One fixed directory (not per-pid): repeat runs actually exercise
    // recovery + checkpoint resume, and /tmp does not accumulate a new
    // WAL per run. Override with SAFEWEB_DATA_DIR.
    let data_dir = std::env::var_os("SAFEWEB_DATA_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("safeweb-mdt-portal"));
    println!(
        "building the MDT portal (registry → units → DMZ → frontend), \
         durable under {}...",
        data_dir.display()
    );
    let portal = MdtPortal::build(PortalConfig {
        registry: RegistryConfig {
            regions: 2,
            hospitals_per_region: 2,
            mdts_per_hospital: 2,
            patients_per_mdt: 10,
            seed: 2011,
        },
        auth_iterations: 20_000,
        replication_interval: Duration::from_millis(25),
        data_dir: Some(data_dir.clone()),
        ..PortalConfig::default()
    });
    portal.wait_for_pipeline(Duration::from_secs(60));
    println!(
        "pipeline settled: {} records, {} metric docs in the DMZ replica",
        portal.deployment().dmz_db().scan_prefix("record-").len(),
        portal.deployment().dmz_db().scan_prefix("metrics-").len(),
    );

    let app = portal.frontend(&VulnConfig::default());
    let server = portal
        .deployment()
        .serve(app, "127.0.0.1:0")
        .expect("bind frontend");
    let addr = server.addr().to_string();
    println!("portal serving on http://{addr}\n");

    let mdts = portal.mdts().to_vec();
    let own = &mdts[0]; // region 0
    let peer = &mdts[1]; // same hospital, region 0
    let far = mdts
        .iter()
        .find(|m| m.region_id != own.region_id)
        .expect("two regions");

    let get = |path: &str, user: &str| {
        let resp = client::send(
            &addr,
            Request::new(Method::Get, path).with_basic_auth(user, &password_for(user)),
        )
        .expect("http request");
        (resp.status(), resp.body_str().unwrap_or("").to_string())
    };

    // F1: a member consults their own patients.
    let (status, body) = get(&format!("/records/{}", own.name), &own.name);
    println!(
        "F1  {own}/records as {own}: HTTP {status} ({} bytes of records)",
        body.len(),
        own = own.name
    );
    assert_eq!(status, 200);

    // P1: another MDT is refused the same records.
    let (status, _) = get(&format!("/records/{}", own.name), &peer.name);
    println!(
        "P1  {}/records as {}: HTTP {status} (denied)",
        own.name, peer.name
    );
    assert_eq!(status, 403);

    // The HTML front page (what the paper benchmarks).
    let (status, body) = get(&format!("/mdt/{}", own.name), &own.name);
    println!(
        "F1  front page as {}: HTTP {status} ({} bytes of HTML)",
        own.name,
        body.len()
    );
    assert_eq!(status, 200);

    // F2: own metrics.
    let (status, body) = get(&format!("/metrics/{}", own.name), &own.name);
    println!("F2  metrics as owner: HTTP {status} {body}");
    assert_eq!(status, 200);

    // F3: same-region peer may compare; other-region MDT may not.
    let (status, _) = get(&format!("/metrics/{}", own.name), &peer.name);
    println!(
        "F3  {}'s metrics as same-region {}: HTTP {status}",
        own.name, peer.name
    );
    assert_eq!(status, 200);
    let (status, _) = get(&format!("/metrics/{}", own.name), &far.name);
    println!(
        "P1  {}'s metrics as other-region {}: HTTP {status} (denied)",
        own.name, far.name
    );
    assert_eq!(status, 403);

    // Regional aggregates: visible to every MDT.
    let (status, body) = get("/aggregates/regional", &far.name);
    println!(
        "F3  regional aggregates as {}: HTTP {status} {body}",
        far.name
    );
    assert_eq!(status, 200);

    // The comparison page.
    let (status, body) = get(&format!("/compare/{}", own.name), &own.name);
    println!("F3  compare page: HTTP {status} ({} bytes)", body.len());
    assert_eq!(status, 200);

    // S1: the DMZ replica rejects writes — even if the frontend were
    // compromised, nothing flows back toward the Intranet.
    let err = portal
        .deployment()
        .dmz_db()
        .put(
            "evil",
            safeweb::json::Value::object(),
            Default::default(),
            None,
        )
        .expect_err("DMZ must be read-only");
    println!("S1  write to DMZ replica rejected: {err}");

    // Durability: both stores are WAL-backed and the replication
    // checkpoint is persisted through the replica's log, so a restart
    // with the same SAFEWEB_DATA_DIR resumes incrementally.
    assert!(portal.deployment().is_durable());
    println!(
        "\ndurable: app DB + DMZ replica under {} (replication checkpoint {} persisted: {})",
        data_dir.display(),
        portal.deployment().replication_checkpoint().unwrap_or(0),
        portal
            .deployment()
            .dmz_db()
            .replication_checkpoint_persisted()
            .unwrap_or(0),
    );

    println!("\nmdt_portal OK — policy P1 enforced end-to-end over HTTP.");
}
