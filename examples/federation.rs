//! Federation of regional SafeWeb instances — the paper's future work
//! (§7): "Scaling up will involve creating separate, independent regional
//! instances of SafeWeb, which can interact with each other in a secure
//! fashion."
//!
//! ```sh
//! cargo run --example federation
//! ```
//!
//! Two regions (East and West) each run their own broker and engine. A
//! *federation bridge* — a privileged unit in East, audited like any other
//! privileged unit — forwards selected events into West's broker
//! **preserving their labels**, so West's label filtering keeps protecting
//! East's data: only West subscribers holding clearance for East's labels
//! ever see the forwarded events.

use std::sync::Arc;
use std::time::Duration;

use safeweb::broker::Broker;
use safeweb::engine::{Engine, Relabel, UnitError, UnitSpec};
use safeweb::events::Event;
use safeweb::labels::{Label, Policy, Privilege, PrivilegeSet};

fn main() {
    // Each region has its own broker and policy file.
    let east = Broker::new();
    let west = Broker::new();

    let east_policy: Policy = "
        unit bridge {
            privileged
            clearance label:conf:ecric.org.uk/shared/*
        }
    "
    .parse()
    .expect("well-formed policy");

    // The bridge subscribes in East (to the inter-regional topic only —
    // its clearance is scoped to /shared labels, so purely regional data
    // can never transit even if misrouted) and republishes into West.
    let west_for_bridge = west.clone();
    let mut east_engine = Engine::new(Arc::new(east.clone()), east_policy);
    east_engine
        .add_unit(
            UnitSpec::new("bridge").subscribe("/interregional", None, move |jail, event| {
                // Privileged: talking to another region's broker is I/O.
                let _io = jail.io()?;
                let forwarded = Event::new("/from_east")
                    .map_err(|e| UnitError::BadEvent(e.to_string()))?
                    .with_attr("origin", "east")
                    .with_attr("kind", event.attr("kind").unwrap_or("?"))
                    .with_payload(event.payload().unwrap_or(""));
                // The labels ride along unchanged: Relabel::keep() means
                // West enforces exactly the restrictions East attached.
                let labelled = forwarded.with_label_set(*jail.labels());
                west_for_bridge.publish(&labelled);
                // Also keep a copy on the eastern audit topic.
                jail.publish(
                    Event::new("/bridge_audit")
                        .map_err(|e| UnitError::BadEvent(e.to_string()))?
                        .with_attr("forwarded", "true"),
                    Relabel::keep(),
                )
            }),
        )
        .expect("unique unit");
    let east_handle = east_engine.start().expect("east engine");

    // Subscribers in West: one MDT with clearance for East's shared label,
    // one without any.
    let shared_label = Label::conf("ecric.org.uk", "shared/oncology-network");
    let mut cleared = PrivilegeSet::new();
    cleared.grant(Privilege::clearance(shared_label.clone()));
    let west_member = west.subscribe("west_member", "1", "/from_east", None, cleared);
    let west_outsider = west.subscribe(
        "west_outsider",
        "1",
        "/from_east",
        None,
        PrivilegeSet::new(),
    );

    // East publishes a labelled inter-regional report and a purely
    // regional (differently labelled) one.
    println!("east publishes an inter-regional oncology report…");
    east.publish(
        &Event::new("/interregional")
            .expect("valid topic")
            .with_attr("kind", "network_report")
            .with_payload("pan-regional survival statistics")
            .with_labels([shared_label.clone()]),
    );
    east.publish(
        &Event::new("/interregional")
            .expect("valid topic")
            .with_attr("kind", "east_only")
            .with_payload("east-internal detail")
            .with_labels([Label::conf("ecric.org.uk", "region/east/internal")]),
    );

    // The cleared member receives the shared report, labels intact.
    let delivery = west_member
        .recv_timeout(Duration::from_secs(5))
        .expect("federated event arrives");
    println!(
        "west member received: kind={} payload={:?} labels={}",
        delivery.event.attr("kind").unwrap_or("?"),
        delivery.event.event().payload().unwrap_or(""),
        delivery.event.labels(),
    );
    assert_eq!(delivery.event.attr("kind"), Some("network_report"));
    assert!(delivery.event.labels().contains(&shared_label));

    // The east-only event never crossed: the bridge had no clearance for
    // its label, so East's own broker filtered it before the bridge saw it.
    assert!(
        west_member
            .recv_timeout(Duration::from_millis(300))
            .is_err(),
        "east-internal event must not be federated"
    );
    println!("east-internal event was not federated (bridge lacks clearance).");

    // The uncleared West subscriber sees nothing at all: West's broker
    // enforces East's labels.
    assert!(
        west_outsider
            .recv_timeout(Duration::from_millis(300))
            .is_err(),
        "outsider must not receive federated data"
    );
    println!("west outsider received nothing (labels survive federation).");

    assert!(east_handle.violations().is_empty());
    east_handle.stop();
    println!("\nfederation OK — labels enforce East's policy inside West.");
}
