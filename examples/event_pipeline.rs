//! The paper's Listing 1, running on the real broker and engine: a unit
//! that accumulates the day's cancer-patient reports and publishes a
//! relabelled daily list when the day rolls over.
//!
//! ```sh
//! cargo run --example event_pipeline
//! ```
//!
//! Demonstrates the backend half of SafeWeb (§4.2–§4.3): label-aware
//! subscription matching, `$LABELS` tracking through the per-unit
//! key-value store, and declassification under policy.

use std::sync::Arc;
use std::time::Duration;

use safeweb::broker::Broker;
use safeweb::engine::{Engine, Relabel, UnitError, UnitSpec};
use safeweb::events::Event;
use safeweb::labels::{Label, Policy, Privilege, PrivilegeSet};

fn main() {
    // The policy file: the unit may see patient data and may declassify
    // patient labels when publishing the aggregate list (§3.1's trusted
    // aggregation component).
    let policy: Policy = "
        unit daily_list {
            clearance  label:conf:ecric.org.uk/patient/*
            declassify label:conf:ecric.org.uk/patient/*
        }
    "
    .parse()
    .expect("well-formed policy");

    let broker = Broker::new();
    let mut engine = Engine::new(Arc::new(broker.clone()), policy);

    // Listing 1, line for line:
    //
    //   subscribe /patient_report, type=cancer do |event|
    //     list = get patient_list ; list push event[:patient_id]
    //     set patient_list, list
    //   end
    //   subscribe /next_day do |event|
    //     list = get patient_list
    //     publish /daily_report, list, :remove => $LABELS,
    //                                  :add => [label:...:patient_list]
    //   end
    engine
        .add_unit(
            UnitSpec::new("daily_list")
                .subscribe("/patient_report", Some("type = 'cancer'"), |jail, event| {
                    let mut list = jail.get("patient_list").unwrap_or_default();
                    if !list.is_empty() {
                        list.push(',');
                    }
                    list.push_str(event.attr("patient_id").unwrap_or("?"));
                    println!(
                        "  [unit] folded patient {} — $LABELS now {}",
                        event.attr("patient_id").unwrap_or("?"),
                        jail.labels()
                    );
                    jail.set("patient_list", list, Relabel::keep())
                })
                .subscribe("/next_day", None, |jail, _event| {
                    let list = jail.get("patient_list").unwrap_or_default();
                    println!(
                        "  [unit] day rollover — $LABELS after read: {}",
                        jail.labels()
                    );
                    jail.publish(
                        Event::new("/daily_report")
                            .map_err(|e| UnitError::BadEvent(e.to_string()))?
                            .with_payload(list),
                        Relabel::keep()
                            .remove_all()
                            .add(Label::conf("ecric.org.uk", "patient_list")),
                    )
                }),
        )
        .expect("unique unit name");
    let handle = engine.start().expect("engine starts");

    // The portal backend subscribes to the daily report with clearance for
    // the aggregate label only — it never needs patient-level clearance.
    let mut portal_clearance = PrivilegeSet::new();
    portal_clearance.grant(Privilege::clearance(Label::conf(
        "ecric.org.uk",
        "patient_list",
    )));
    let portal = broker.subscribe("portal", "1", "/daily_report", None, portal_clearance);

    // A nosy subscriber with no clearance sees nothing at all.
    let nosy = broker.subscribe("nosy", "1", "/daily_report", None, PrivilegeSet::new());

    // Publish the day's reports (the producer labels each with the
    // patient's label; note 77 is filtered out by the selector).
    println!("publishing patient reports...");
    for (id, typ) in [
        ("33812769", "cancer"),
        ("77", "benign"),
        ("40021532", "cancer"),
    ] {
        broker.publish(
            &Event::new("/patient_report")
                .expect("valid topic")
                .with_attr("type", typ)
                .with_attr("patient_id", id)
                .with_labels([Label::conf("ecric.org.uk", &format!("patient/{id}"))]),
        );
    }
    // Let the unit drain its queue, then roll the day.
    std::thread::sleep(Duration::from_millis(300));
    println!("publishing /next_day...");
    broker.publish(
        &Event::new("/next_day")
            .expect("valid topic")
            .with_labels([]),
    );

    let delivery = portal
        .recv_timeout(Duration::from_secs(5))
        .expect("daily report arrives");
    println!(
        "portal received daily report: payload={:?} labels={}",
        delivery.event.event().payload().unwrap_or(""),
        delivery.event.labels()
    );
    assert_eq!(delivery.event.event().payload(), Some("33812769,40021532"));

    assert!(
        nosy.recv_timeout(Duration::from_millis(200)).is_err(),
        "nosy subscriber must not receive the report"
    );
    println!("nosy subscriber received nothing (label filtering works).");

    let stats = broker.stats();
    println!(
        "broker stats: published={} delivered={} label_filtered={} selector_filtered={}",
        stats.published(),
        stats.delivered(),
        stats.label_filtered(),
        stats.selector_filtered()
    );
    assert!(handle.violations().is_empty());
    handle.stop();
    println!("event_pipeline OK");
}
